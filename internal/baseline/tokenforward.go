package baseline

import (
	"fmt"
	"math/rand"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
)

// TokenForwardResult is the outcome of a token-forwarding counting run.
type TokenForwardResult struct {
	// Estimate is the number of distinct tokens the designated observer
	// collected: the count estimate. It can undercount if two processes
	// drew the same token (probability ≤ n²/2·1/Bound·…) or if
	// dissemination did not finish within the round budget.
	Estimate int
	// Exact reports whether Estimate equals the true n — filled in by the
	// harness, which knows the truth; the algorithm itself cannot tell.
	Exact bool
	// Rounds is the number of rounds executed (always the full budget:
	// token forwarding has no termination detection without n).
	Rounds int
	// MaxMessageBits is the size of the largest message.
	MaxMessageBits int
}

// tokenMessage carries one token per round (single-token forwarding, the
// model of the Ω(n²/log n) lower bound of Dutta et al., SODA 2013).
type tokenMessage struct {
	token int64
}

// RunTokenForward executes the randomized token-forwarding counting
// comparator of Kuhn–Lynch–Oshman (STOC 2010): every process draws a
// random token from [0, bound³), forwards one uniformly random known token
// per round for rounds = 2·bound² rounds, and the observer counts distinct
// tokens. It requires an a-priori bound ≥ n, succeeds only with high
// probability, and the tokens act as identifiers, forfeiting anonymity —
// the three shortcomings Section 1.2 of the paper contrasts against.
func RunTokenForward(s dynnet.Schedule, bound int, seed int64) (*TokenForwardResult, error) {
	n := s.N()
	if bound < n {
		return nil, fmt.Errorf("baseline: bound %d below process count %d", bound, n)
	}
	rounds := 2 * bound * bound
	space := int64(bound) * int64(bound) * int64(bound)

	rng := rand.New(rand.NewSource(seed))
	steppers := make([]engine.Stepper, n)
	observer := (*tokenStepper)(nil)
	for i := range steppers {
		st := &tokenStepper{
			rng:    rand.New(rand.NewSource(rng.Int63())),
			known:  map[int64]bool{},
			budget: rounds,
		}
		st.self = st.rng.Int63n(space)
		st.known[st.self] = true
		steppers[i] = st
		if i == 0 {
			observer = st
		}
	}

	res, err := engine.RunSteppers(engine.Config{
		Schedule:  s,
		MaxRounds: rounds + 1,
		SizeOf: func(m engine.Message) int {
			tm, ok := m.(tokenMessage)
			if !ok {
				return 0
			}
			return varintBits(tm.token)
		},
	}, steppers)
	if err != nil {
		return nil, err
	}
	return &TokenForwardResult{
		Estimate:       len(observer.known),
		Rounds:         res.Rounds,
		MaxMessageBits: res.MaxMessageBits,
	}, nil
}

// tokenStepper is the per-process state machine.
type tokenStepper struct {
	rng    *rand.Rand
	self   int64
	known  map[int64]bool
	budget int
	steps  int
}

var _ engine.Stepper = (*tokenStepper)(nil)

// Compose forwards a uniformly random known token.
func (t *tokenStepper) Compose() engine.Message {
	tokens := make([]int64, 0, len(t.known))
	for tok := range t.known {
		tokens = append(tokens, tok)
	}
	// Deterministic order before sampling, so runs are reproducible.
	for i := 1; i < len(tokens); i++ {
		for j := i; j > 0 && tokens[j] < tokens[j-1]; j-- {
			tokens[j], tokens[j-1] = tokens[j-1], tokens[j]
		}
	}
	return tokenMessage{token: tokens[t.rng.Intn(len(tokens))]}
}

// Deliver collects received tokens.
func (t *tokenStepper) Deliver(msgs []engine.Message) {
	for _, raw := range msgs {
		if tm, ok := raw.(tokenMessage); ok {
			t.known[tm.token] = true
		}
	}
	t.steps++
}

// Done terminates after the fixed round budget.
func (t *tokenStepper) Done() (any, bool) {
	if t.steps >= t.budget {
		return len(t.known), true
	}
	return nil, false
}
