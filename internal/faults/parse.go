package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Plan from its compact textual form: a comma-separated
// list of fault entries with colon-separated integer (or, for P, float)
// fields. The grammar, with ROUNDS ≤ 0 meaning "until the end of the
// run":
//
//	burst:FROM:ROUNDS        in-model disconnection burst (budgetT ≥ 2)
//	spike:FROM:ROUNDS        in-model diameter spike (shifting path)
//	cut:FROM:ROUNDS          in-model bottleneck (two bridged cliques)
//	storm:FROM:ROUNDS:FACTOR in-model duplication storm (×FACTOR links)
//	drop:FROM:ROUNDS:P       OUT-OF-MODEL link drop with probability P
//	crash:PID:FROM:ROUNDS    OUT-OF-MODEL process crash (links severed)
//
// For example "spike:7:40,storm:1:0:3" spikes the diameter for rounds
// 7–46 and triples every link for the whole run. An empty spec yields an
// empty (fault-free) plan. Plan.String round-trips through Parse.
func Parse(spec string, budgetT int, seed int64) (*Plan, error) {
	var fs []Fault
	if s := strings.TrimSpace(spec); s != "" {
		for _, entry := range strings.Split(s, ",") {
			f, err := parseEntry(strings.TrimSpace(entry))
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
	}
	return NewPlan(seed, budgetT, fs...)
}

func parseEntry(entry string) (Fault, error) {
	parts := strings.Split(entry, ":")
	name := parts[0]
	args := parts[1:]
	ints := func(want int) ([]int, error) {
		if len(args) != want {
			return nil, fmt.Errorf("faults: %q needs %d fields, got %d", name, want, len(args))
		}
		out := make([]int, want)
		for i, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil {
				return nil, fmt.Errorf("faults: %q field %d: %v", name, i+1, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case burstName:
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		return DisconnectBurst{From: v[0], Rounds: v[1]}, nil
	case spikeName:
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		return DiamSpike{From: v[0], Rounds: v[1]}, nil
	case cutName:
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		return BottleneckCut{From: v[0], Rounds: v[1]}, nil
	case stormName:
		v, err := ints(3)
		if err != nil {
			return nil, err
		}
		return DuplicationStorm{From: v[0], Rounds: v[1], Factor: v[2]}, nil
	case dropName:
		if len(args) != 3 {
			return nil, fmt.Errorf("faults: %q needs 3 fields, got %d", name, len(args))
		}
		from, err1 := strconv.Atoi(args[0])
		rounds, err2 := strconv.Atoi(args[1])
		p, err3 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("faults: malformed %q entry %q", name, entry)
		}
		return LinkDrop{From: from, Rounds: rounds, P: p}, nil
	case crashName:
		v, err := ints(3)
		if err != nil {
			return nil, err
		}
		return CrashRestart{PID: v[0], From: v[1], Rounds: v[2]}, nil
	default:
		return nil, fmt.Errorf("faults: unknown fault %q (want burst, spike, cut, storm, drop, or crash)", name)
	}
}
