package faults

import (
	"testing"

	"anondyn/internal/dynnet"
)

// FuzzFaultPlan feeds arbitrary specs through the fault-plan grammar and
// asserts the Plan contract on everything Parse accepts: String is an
// exact round trip, application is deterministic, every produced graph is
// a well-formed multigraph on the inner schedule's process set, and
// in-model plans preserve BudgetT-block union-connectivity.
func FuzzFaultPlan(f *testing.F) {
	f.Add("", 1, int64(0))
	f.Add("burst:1:0", 4, int64(5))
	f.Add("spike:7:40,storm:1:0:3", 1, int64(11))
	f.Add("cut:3:12,drop:2:10:0.25", 2, int64(-3))
	f.Add("crash:0:5:20", 1, int64(9))
	f.Add("spike:1:2:3", 1, int64(1))        // malformed: must be rejected
	f.Add("storm:1:0:1", 1, int64(1))        // malformed: factor < 2
	f.Add("drop:1:0:NaN", 1, int64(1))       // malformed: bad float
	f.Add("burst:1:0,,cut:1:1", 1, int64(1)) // malformed: empty entry

	f.Fuzz(func(t *testing.T, spec string, budgetT int, seed int64) {
		budgetT = 1 + abs(budgetT)%8
		p, err := Parse(spec, budgetT, seed)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := p.String()
		again, err := Parse(rendered, budgetT, seed)
		if err != nil {
			t.Fatalf("String() %q of accepted spec %q does not re-parse: %v", rendered, spec, err)
		}
		if again.String() != rendered {
			t.Fatalf("String round trip drifted: %q → %q", rendered, again.String())
		}

		const n = 6
		if err := p.ValidateFor(n); err != nil {
			return // e.g. a crash PID beyond the network; a legal rejection
		}
		inner := dynnet.NewRandomConnected(n, 0.4, 3)
		var base dynnet.Schedule = inner
		if budgetT > 1 {
			uc, err := dynnet.NewUnionConnected(inner, budgetT)
			if err != nil {
				t.Fatal(err)
			}
			base = uc
		}
		a, b := p.Wrap(base), p.Wrap(base)
		horizon := 3*budgetT + 4
		for round := 1; round <= horizon; round++ {
			g := a.Graph(round)
			if g.N() != n {
				t.Fatalf("round %d: graph on %d processes, want %d", round, g.N(), n)
			}
			for _, l := range g.CanonicalLinks() {
				if l.U < 0 || l.V <= l.U || l.V >= n || l.Mult < 1 {
					t.Fatalf("round %d: malformed link %+v", round, l)
				}
			}
			h := b.Graph(round)
			if g.LinkCount() != h.LinkCount() || len(g.CanonicalLinks()) != len(h.CanonicalLinks()) {
				t.Fatalf("round %d: identical plans diverged", round)
			}
			for i, l := range g.CanonicalLinks() {
				if h.CanonicalLinks()[i] != l {
					t.Fatalf("round %d: identical plans diverged at link %d", round, i)
				}
			}
		}
		if p.InModel() {
			for start := 1; start+budgetT-1 <= horizon; start += budgetT {
				ok, err := dynnet.UnionConnected(a, start, budgetT)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("in-model plan %q broke union-connectivity of block at round %d", rendered, start)
				}
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
