// Package faults provides seeded, composable, fully deterministic fault
// plans for counting simulations. A Plan wraps any oblivious
// dynnet.Schedule (Plan.Wrap) or reactive engine.AdaptiveSchedule
// (Plan.WrapAdaptive) and perturbs the communication multigraph of every
// round a fault window covers.
//
// Faults come in two classes:
//
//   - In-model faults (InModel() == true) stay inside the paper's
//     adversary: every perturbed schedule remains T-union-connected for
//     the plan's BudgetT, so the protocol MUST still produce the exact
//     count. DisconnectBurst disconnects individual rounds while keeping
//     each aligned T-round block union-connected; DiamSpike swaps the
//     topology for a shifting path (dynamic diameter Θ(n), stressing
//     DiamEstimate doubling and the reset machinery); BottleneckCut
//     funnels all traffic through a single rotating bridge; and
//     DuplicationStorm multiplies link multiplicities (the protocol's
//     answers are multiset-based, so duplication must be harmless).
//
//   - Out-of-model faults (InModel() == false) break the adversary
//     contract: LinkDrop deletes links after the fact (messages silently
//     lost, the network possibly disconnected forever), CrashRestart
//     severs one process entirely for a window (a crash with state kept —
//     on "restart" its links simply reappear). Under these the protocol
//     has no obligation to answer, but the run must fail DETECTABLY:
//     combine them with the engine watchdog (engine.Config.Deadline /
//     core.RunOptions.Deadline) so a wedged run ends in a structured
//     *engine.WatchdogError instead of a hang.
//
// Everything is a pure function of (Plan.Seed, round): plans never read
// clocks or shared state, never mutate the graphs of the wrapped
// schedule, and two runs over the same plan see byte-identical topology
// streams.
package faults

import (
	"fmt"
	"math/rand/v2"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
)

// Fault is one deterministic fault window of a Plan. Concrete faults are
// the exported structs in this package (DisconnectBurst, DiamSpike,
// BottleneckCut, DuplicationStorm, LinkDrop, CrashRestart).
type Fault interface {
	// Name returns the fault's compact spec-form keyword (see Parse).
	Name() string
	// InModel reports whether the fault keeps the perturbed schedule
	// inside the paper's T-union-connected adversary model for the plan's
	// BudgetT, in which case the protocol must still count exactly.
	InModel() bool
	// Window returns the half-open real-round interval [from, to) the
	// fault is active in; to ≤ 0 means the fault never ends.
	Window() (from, to int)

	// spec renders the fault in its Parse-able textual form.
	spec() string
	// validate checks the fault's parameters against the plan.
	validate(p *Plan) error
	// apply transforms the round-t communication graph. Implementations
	// must build a fresh graph (or return g unchanged), never mutate g.
	apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph
}

// Plan is a seeded, composable set of fault windows applied in order over
// a wrapped schedule. The zero value is an empty plan (no faults,
// BudgetT 1); build real plans with NewPlan or Parse.
type Plan struct {
	// Seed drives every randomized fault (LinkDrop). Two plans with equal
	// seeds and faults produce identical topology streams.
	Seed int64
	// BudgetT is the T-union-connectivity budget in-model faults must
	// respect: after applying them, the union of every aligned T-round
	// block is still connected whenever the wrapped schedule's was. It is
	// at least 1 and should match the protocol's Config.BlockT.
	BudgetT int
	// Faults are the fault windows, applied in slice order each round.
	Faults []Fault
}

// NewPlan validates the faults and assembles a plan. A budgetT below 1 is
// normalized to 1 (every round connected).
func NewPlan(seed int64, budgetT int, faults ...Fault) (*Plan, error) {
	if budgetT < 1 {
		budgetT = 1
	}
	p := &Plan{Seed: seed, BudgetT: budgetT, Faults: faults}
	for i, f := range faults {
		if f == nil {
			return nil, fmt.Errorf("faults: nil fault at index %d", i)
		}
		if err := f.validate(p); err != nil {
			return nil, fmt.Errorf("faults: %s fault %d: %w", f.Name(), i, err)
		}
	}
	return p, nil
}

// InModel reports whether every fault in the plan is in-model, i.e. the
// exact count is still required under this plan.
func (p *Plan) InModel() bool {
	for _, f := range p.Faults {
		if !f.InModel() {
			return false
		}
	}
	return true
}

// ValidateFor re-checks the plan against a concrete process count; it
// catches parameters (a CrashRestart PID) that cannot be validated before
// the plan is attached to a schedule.
func (p *Plan) ValidateFor(n int) error {
	for i, f := range p.Faults {
		if c, ok := f.(CrashRestart); ok && c.PID >= n {
			return fmt.Errorf("faults: crash fault %d targets process %d, but the network has %d", i, c.PID, n)
		}
	}
	return nil
}

// String renders the plan in the compact textual form accepted by Parse
// (empty for an empty plan).
func (p *Plan) String() string {
	out := ""
	for i, f := range p.Faults {
		if i > 0 {
			out += ","
		}
		out += f.spec()
	}
	return out
}

// activeAt reports whether fault f covers round t.
func activeAt(f Fault, t int) bool {
	from, to := f.Window()
	return t >= from && (to <= 0 || t < to)
}

// graphAt folds the first k faults of the plan over base's round-t graph.
// DisconnectBurst is special: it discards the fold-so-far and re-derives
// the round from the union of the whole aligned BudgetT-round block of
// that same fold (burstSlice), which is what keeps the block's union
// intact while individual rounds disconnect.
func (p *Plan) graphAt(k, t int, base func(int) *dynnet.Multigraph) *dynnet.Multigraph {
	g := base(t)
	for i := 0; i < k; i++ {
		f := p.Faults[i]
		if !activeAt(f, t) {
			continue
		}
		if f.Name() == burstName {
			g = p.burstSlice(i, t, base)
			continue
		}
		g = f.apply(p, t, g)
	}
	return g
}

// burstSlice computes round t under an active DisconnectBurst at fault
// index i: union the first i faults' graphs over the aligned BudgetT-round
// block containing t, then keep only the links whose canonical index falls
// in this round's slice. Each round of the block carries a disjoint slice,
// so single rounds are (typically) disconnected while the block's union is
// exactly the union the un-burst fold would have delivered — aligned with
// the virtual-round blocks of Config.BlockT, which start at round 1.
func (p *Plan) burstSlice(i, t int, base func(int) *dynnet.Multigraph) *dynnet.Multigraph {
	T := p.BudgetT
	if T <= 1 {
		// No budget to spread over: the burst is a no-op.
		return p.graphAt(i, t, base)
	}
	phase := (t - 1) % T
	start := t - phase
	u := p.graphAt(i, start, base)
	for tt := start + 1; tt < start+T; tt++ {
		next, err := u.Union(p.graphAt(i, tt, base))
		if err != nil {
			// All graphs of one plan share the process count.
			panic(fmt.Sprintf("faults: block union at round %d: %v", tt, err))
		}
		u = next
	}
	out := dynnet.NewMultigraph(u.N())
	for j, l := range u.CanonicalLinks() {
		if j%T == phase {
			out.MustAddLink(l.U, l.V, l.Mult)
		}
	}
	return out
}

// Schedule is a fault plan laid over an oblivious inner schedule; it
// implements dynnet.Schedule and stays a pure function of the round
// number.
type Schedule struct {
	inner dynnet.Schedule
	plan  *Plan
}

var _ dynnet.Schedule = (*Schedule)(nil)

// Wrap lays the plan over an oblivious schedule.
func (p *Plan) Wrap(inner dynnet.Schedule) *Schedule {
	return &Schedule{inner: inner, plan: p}
}

// N implements dynnet.Schedule.
func (s *Schedule) N() int { return s.inner.N() }

// Graph implements dynnet.Schedule.
func (s *Schedule) Graph(t int) *dynnet.Multigraph {
	return s.plan.graphAt(len(s.plan.Faults), t, s.inner.Graph)
}

// Plan returns the wrapped plan.
func (s *Schedule) Plan() *Plan { return s.plan }

// AdaptiveSchedule is a fault plan laid over a reactive adversary; it
// implements engine.AdaptiveSchedule. When the plan contains a
// DisconnectBurst (and BudgetT > 1), the adversary's raw graph is frozen
// at each aligned block's first round and reused for the whole block —
// the burst needs the block rounds to slice a common union, and a
// reactive adversary cannot be replayed for future rounds.
type AdaptiveSchedule struct {
	inner engine.AdaptiveSchedule
	plan  *Plan

	blockStart int
	frozen     *dynnet.Multigraph
}

var _ engine.AdaptiveSchedule = (*AdaptiveSchedule)(nil)

// WrapAdaptive lays the plan over a reactive adversary.
func (p *Plan) WrapAdaptive(inner engine.AdaptiveSchedule) *AdaptiveSchedule {
	return &AdaptiveSchedule{inner: inner, plan: p}
}

// N implements engine.AdaptiveSchedule.
func (a *AdaptiveSchedule) N() int { return a.inner.N() }

// Graph implements engine.AdaptiveSchedule.
func (a *AdaptiveSchedule) Graph(round int, sent []engine.Message) *dynnet.Multigraph {
	raw := a.inner.Graph(round, sent)
	base := func(int) *dynnet.Multigraph { return raw }
	if a.plan.BudgetT > 1 && a.plan.hasBurst() {
		start := round - (round-1)%a.plan.BudgetT
		if a.frozen == nil || a.blockStart != start {
			a.blockStart, a.frozen = start, raw.Clone()
		}
		fz := a.frozen
		base = func(int) *dynnet.Multigraph { return fz }
	}
	return a.plan.graphAt(len(a.plan.Faults), round, base)
}

func (p *Plan) hasBurst() bool {
	for _, f := range p.Faults {
		if f.Name() == burstName {
			return true
		}
	}
	return false
}

// Fault keywords, shared between the implementations and Parse.
const (
	burstName = "burst"
	spikeName = "spike"
	cutName   = "cut"
	stormName = "storm"
	dropName  = "drop"
	crashName = "crash"
)

// window returns the half-open interval of a (From, Rounds) pair; Rounds
// ≤ 0 means "never ends" (to = 0).
func window(from, rounds int) (int, int) {
	if rounds <= 0 {
		return from, 0
	}
	return from, from + rounds
}

func validateWindow(from int) error {
	if from < 1 {
		return fmt.Errorf("window must start at round ≥ 1, got %d", from)
	}
	return nil
}

func specWindow(name string, from, rounds int) string {
	return fmt.Sprintf("%s:%d:%d", name, from, rounds)
}

// DisconnectBurst is the in-model disconnection fault: while active, each
// round delivers only a 1/T slice (by canonical link index) of the union
// the fold-so-far would have delivered over the round's aligned
// BudgetT-round block. Individual rounds are typically disconnected —
// often edge-empty — but every aligned block stays union-connected, so a
// protocol run with Config.BlockT = BudgetT must still count exactly.
// Requires BudgetT ≥ 2 to have any effect.
type DisconnectBurst struct {
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
}

// Name implements Fault.
func (f DisconnectBurst) Name() string { return burstName }

// InModel implements Fault: bursts respect the T-union budget.
func (f DisconnectBurst) InModel() bool { return true }

// Window implements Fault.
func (f DisconnectBurst) Window() (int, int) { return window(f.From, f.Rounds) }

func (f DisconnectBurst) spec() string { return specWindow(burstName, f.From, f.Rounds) }

func (f DisconnectBurst) validate(p *Plan) error { return validateWindow(f.From) }

// apply implements Fault. Bursts are applied through Plan.burstSlice (the
// fold special-cases them); the plain apply — slicing just this round's
// graph — is only a defensive fallback and keeps the interface total.
func (f DisconnectBurst) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	T := p.BudgetT
	if T <= 1 {
		return g
	}
	phase := (t - 1) % T
	out := dynnet.NewMultigraph(g.N())
	for j, l := range g.CanonicalLinks() {
		if j%T == phase {
			out.MustAddLink(l.U, l.V, l.Mult)
		}
	}
	return out
}

// DiamSpike is the in-model diameter fault: while active, the round's
// graph is replaced by a shifting path (dynamic diameter Θ(n)). Every
// round stays connected, but a protocol that calibrated DiamEstimate on a
// small-diameter prefix now misses acknowledgments, forcing the
// error/reset machinery (a doubling reset) to fire.
type DiamSpike struct {
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
}

// Name implements Fault.
func (f DiamSpike) Name() string { return spikeName }

// InModel implements Fault: a connected graph every round is 1-union-
// connected.
func (f DiamSpike) InModel() bool { return true }

// Window implements Fault.
func (f DiamSpike) Window() (int, int) { return window(f.From, f.Rounds) }

func (f DiamSpike) spec() string { return specWindow(spikeName, f.From, f.Rounds) }

func (f DiamSpike) validate(p *Plan) error { return validateWindow(f.From) }

func (f DiamSpike) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	return dynnet.NewShiftingPath(g.N()).Graph(t)
}

// BottleneckCut is the in-model bandwidth fault: while active, the
// round's graph becomes two cliques joined by a single rotating bridge,
// so all cross-half information funnels through one link per round.
// Connected every round; needs n ≥ 2 to have a bridge.
type BottleneckCut struct {
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
}

// Name implements Fault.
func (f BottleneckCut) Name() string { return cutName }

// InModel implements Fault.
func (f BottleneckCut) InModel() bool { return true }

// Window implements Fault.
func (f BottleneckCut) Window() (int, int) { return window(f.From, f.Rounds) }

func (f BottleneckCut) spec() string { return specWindow(cutName, f.From, f.Rounds) }

func (f BottleneckCut) validate(p *Plan) error { return validateWindow(f.From) }

func (f BottleneckCut) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	if g.N() < 2 {
		return g
	}
	return dynnet.NewBottleneck(g.N()).Graph(t)
}

// DuplicationStorm is the in-model congestion fault: while active, every
// link's multiplicity is multiplied by Factor. Connectivity is untouched;
// the protocol's multiset bookkeeping (red-edge multiplicities, anonymous
// broadcast) must absorb the duplicates without miscounting.
type DuplicationStorm struct {
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
	// Factor multiplies every link multiplicity; it must be ≥ 2.
	Factor int
}

// Name implements Fault.
func (f DuplicationStorm) Name() string { return stormName }

// InModel implements Fault.
func (f DuplicationStorm) InModel() bool { return true }

// Window implements Fault.
func (f DuplicationStorm) Window() (int, int) { return window(f.From, f.Rounds) }

func (f DuplicationStorm) spec() string {
	return fmt.Sprintf("%s:%d:%d:%d", stormName, f.From, f.Rounds, f.Factor)
}

func (f DuplicationStorm) validate(p *Plan) error {
	if err := validateWindow(f.From); err != nil {
		return err
	}
	if f.Factor < 2 {
		return fmt.Errorf("duplication factor must be ≥ 2, got %d", f.Factor)
	}
	return nil
}

func (f DuplicationStorm) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	out := dynnet.NewMultigraph(g.N())
	for _, l := range g.CanonicalLinks() {
		out.MustAddLink(l.U, l.V, l.Mult*f.Factor)
	}
	return out
}

// LinkDrop is the OUT-OF-MODEL message-loss fault: while active, each
// link of the round's graph is independently deleted with probability P,
// decided by a PCG stream keyed on (Plan.Seed, round) — deterministic
// across runs, independent across rounds. Dropping links after the
// schedule chose them violates the adversary contract (the union budget
// can break arbitrarily), so runs under LinkDrop must be paired with a
// watchdog deadline.
type LinkDrop struct {
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
	// P is the per-link drop probability in (0, 1].
	P float64
}

// Name implements Fault.
func (f LinkDrop) Name() string { return dropName }

// InModel implements Fault: dropped links break the union budget.
func (f LinkDrop) InModel() bool { return false }

// Window implements Fault.
func (f LinkDrop) Window() (int, int) { return window(f.From, f.Rounds) }

func (f LinkDrop) spec() string {
	return fmt.Sprintf("%s:%d:%d:%g", dropName, f.From, f.Rounds, f.P)
}

func (f LinkDrop) validate(p *Plan) error {
	if err := validateWindow(f.From); err != nil {
		return err
	}
	if f.P <= 0 || f.P > 1 {
		return fmt.Errorf("drop probability must be in (0, 1], got %g", f.P)
	}
	return nil
}

func (f LinkDrop) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	// Threshold comparison over the top 53 bits of the PCG stream keeps
	// the decision exact for P = 1 (every draw is below 2^53).
	threshold := uint64(f.P * (1 << 53))
	var pcg rand.PCG
	pcg.Seed(uint64(p.Seed)^0x64726f70, uint64(t))
	out := dynnet.NewMultigraph(g.N())
	for _, l := range g.CanonicalLinks() {
		if pcg.Uint64()>>11 < threshold {
			continue // dropped
		}
		out.MustAddLink(l.U, l.V, l.Mult)
	}
	return out
}

// CrashRestart is the OUT-OF-MODEL process fault: while active, every
// link incident to PID is removed — the process is crashed, silently
// unreachable, yet the engine still runs it (a crash with state kept: on
// "restart", when the window closes, its links simply reappear). A
// crashed leader wedges the whole protocol in its error phase, which is
// exactly the hang the watchdog must convert into a structured failure.
type CrashRestart struct {
	// PID is the engine index of the crashed process.
	PID int
	// From is the first faulty round (1-based); Rounds is the window
	// length (≤ 0: forever).
	From, Rounds int
}

// Name implements Fault.
func (f CrashRestart) Name() string { return crashName }

// InModel implements Fault: an unreachable process breaks every union
// budget.
func (f CrashRestart) InModel() bool { return false }

// Window implements Fault.
func (f CrashRestart) Window() (int, int) { return window(f.From, f.Rounds) }

func (f CrashRestart) spec() string {
	return fmt.Sprintf("%s:%d:%d:%d", crashName, f.PID, f.From, f.Rounds)
}

func (f CrashRestart) validate(p *Plan) error {
	if err := validateWindow(f.From); err != nil {
		return err
	}
	if f.PID < 0 {
		return fmt.Errorf("negative process index %d", f.PID)
	}
	return nil
}

func (f CrashRestart) apply(p *Plan, t int, g *dynnet.Multigraph) *dynnet.Multigraph {
	out := dynnet.NewMultigraph(g.N())
	for _, l := range g.CanonicalLinks() {
		if l.U == f.PID || l.V == f.PID {
			continue
		}
		out.MustAddLink(l.U, l.V, l.Mult)
	}
	return out
}
