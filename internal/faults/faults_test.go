package faults

import (
	"strings"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
)

// graphsEqual compares two multigraphs by canonical link list.
func graphsEqual(a, b *dynnet.Multigraph) bool {
	if a.N() != b.N() {
		return false
	}
	la, lb := a.CanonicalLinks(), b.CanonicalLinks()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"burst:1:0",
		"spike:7:40",
		"cut:3:12",
		"storm:1:0:3",
		"drop:2:10:0.25",
		"crash:0:5:20",
		"spike:7:40,storm:1:0:3",
		"burst:1:0,cut:9:4,drop:1:0:1",
	}
	for _, spec := range specs {
		p, err := Parse(spec, 4, 11)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
		again, err := Parse(p.String(), 4, 11)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if again.String() != spec {
			t.Errorf("round trip drifted: %q → %q", spec, again.String())
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	bad := []string{
		"unknown:1:2",
		"spike",
		"spike:1",
		"spike:1:2:3",
		"spike:x:2",
		"storm:1:0",
		"storm:1:0:1",   // factor < 2
		"drop:1:0:0",    // P out of (0,1]
		"drop:1:0:1.5",  // P out of (0,1]
		"crash:-1:1:0",  // negative PID
		"spike:0:4",     // window before round 1
		"burst:1:0,,",   // empty entry
		"drop:1:0:nope", // malformed float
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 2, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	// Two plans with equal seeds over equal schedules must produce
	// byte-identical topology streams, including the randomized LinkDrop.
	base := dynnet.NewRandomConnected(7, 0.5, 3)
	mk := func() *Schedule {
		p, err := Parse("spike:4:6,drop:2:0:0.4,storm:1:0:2", 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		return p.Wrap(base)
	}
	a, b := mk(), mk()
	for round := 1; round <= 40; round++ {
		if !graphsEqual(a.Graph(round), b.Graph(round)) {
			t.Fatalf("round %d: identical plans diverged", round)
		}
	}
}

func TestPlanNeverMutatesInnerSchedule(t *testing.T) {
	// The wrapped schedule's own graphs must be untouched by fault
	// application (apply builds fresh graphs).
	inner := dynnet.NewRandomConnected(6, 0.4, 5)
	p, err := Parse("storm:1:0:3,crash:2:1:0", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Wrap(inner)
	for round := 1; round <= 10; round++ {
		before := inner.Graph(round)
		_ = s.Graph(round)
		if !graphsEqual(before, inner.Graph(round)) {
			t.Fatalf("round %d: fault application mutated the inner schedule", round)
		}
	}
}

func TestInModelClassification(t *testing.T) {
	inModel := []string{"burst:1:0", "spike:1:0", "cut:1:0", "storm:1:0:2"}
	for _, spec := range inModel {
		p, err := Parse(spec, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !p.InModel() {
			t.Errorf("%q must be in-model", spec)
		}
	}
	outOfModel := []string{"drop:1:0:0.5", "crash:0:1:0", "spike:1:0,drop:1:0:1"}
	for _, spec := range outOfModel {
		p, err := Parse(spec, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.InModel() {
			t.Errorf("%q must be out-of-model", spec)
		}
	}
}

func TestValidateForCatchesBadCrashPID(t *testing.T) {
	p, err := Parse("crash:9:1:0", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateFor(4); err == nil {
		t.Fatal("crash PID 9 on a 4-process network must be rejected")
	}
	if err := p.ValidateFor(10); err != nil {
		t.Fatalf("crash PID 9 on a 10-process network must be fine: %v", err)
	}
}

// TestInModelPlansPreserveUnionConnectivity is the core in-model contract:
// whenever the wrapped schedule's aligned BudgetT-round blocks are
// union-connected, the faulted schedule's are too.
func TestInModelPlansPreserveUnionConnectivity(t *testing.T) {
	plans := []string{
		"burst:1:0",
		"spike:3:10",
		"cut:2:8",
		"storm:1:0:4",
		"burst:1:0,spike:5:6",
		"burst:2:9,cut:1:0,storm:4:3:2",
	}
	for _, T := range []int{1, 2, 4, 8} {
		for _, spec := range plans {
			for _, n := range []int{2, 5, 9} {
				p, err := Parse(spec, T, 17)
				if err != nil {
					t.Fatal(err)
				}
				inner := dynnet.NewRandomConnected(n, 0.4, int64(n)*31+int64(T))
				var base dynnet.Schedule = inner
				if T > 1 {
					base, err = dynnet.NewUnionConnected(inner, T)
					if err != nil {
						t.Fatal(err)
					}
				}
				s := p.Wrap(base)
				for start := 1; start <= 4*T+9; start += T {
					ok, err := dynnet.UnionConnected(s, start, T)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("T=%d plan=%q n=%d: block starting at round %d lost union-connectivity",
							T, spec, n, start)
					}
				}
			}
		}
	}
}

// TestBurstDisconnectsIndividualRounds checks that the burst actually does
// something: with a budget T ≥ 2 over a connected schedule, at least one
// individual round in the faulted window is disconnected (otherwise the
// matrix tests would not be exercising the block simulation at all).
func TestBurstDisconnectsIndividualRounds(t *testing.T) {
	n, T := 8, 4
	p, err := Parse("burst:1:0", T, 5)
	if err != nil {
		t.Fatal(err)
	}
	inner := dynnet.NewRandomConnected(n, 0.3, 21)
	base, err := dynnet.NewUnionConnected(inner, T)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Wrap(base)
	disconnected := 0
	for round := 1; round <= 8*T; round++ {
		if !s.Graph(round).Connected() {
			disconnected++
		}
	}
	if disconnected == 0 {
		t.Fatal("burst over a 4-union-connected schedule never disconnected a round")
	}
}

func TestCrashSeversAllLinks(t *testing.T) {
	p, err := Parse("crash:3:2:5", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Wrap(dynnet.NewStatic(dynnet.Complete(6)))
	for round := 1; round <= 10; round++ {
		deg := s.Graph(round).Degree(3)
		inWindow := round >= 2 && round < 7
		if inWindow && deg != 0 {
			t.Fatalf("round %d: crashed process has degree %d", round, deg)
		}
		if !inWindow && deg == 0 {
			t.Fatalf("round %d: process 3 should be restored outside the window", round)
		}
	}
}

func TestDropExtremes(t *testing.T) {
	p, err := Parse("drop:1:0:1", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Wrap(dynnet.NewStatic(dynnet.Complete(5)))
	for round := 1; round <= 5; round++ {
		if got := s.Graph(round).LinkCount(); got != 0 {
			t.Fatalf("round %d: P=1 drop left %d links", round, got)
		}
	}
}

func TestStormMultipliesMultiplicities(t *testing.T) {
	p, err := Parse("storm:1:0:3", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Wrap(dynnet.NewStatic(dynnet.Path(4)))
	for _, l := range s.Graph(1).CanonicalLinks() {
		if l.Mult != 3 {
			t.Fatalf("storm ×3 produced multiplicity %d", l.Mult)
		}
	}
}

func TestAdaptiveWrapMatchesObliviousOnObliviousInner(t *testing.T) {
	// Wrapping the same pure schedule both ways must give the same stream —
	// including burst plans, whose adaptive path freezes block graphs.
	inner := dynnet.NewRandomConnected(6, 0.5, 13)
	for _, spec := range []string{"spike:2:5,storm:1:0:2", "burst:1:0"} {
		T := 3
		var base dynnet.Schedule = inner
		var err error
		if strings.Contains(spec, "burst") {
			base, err = dynnet.NewUnionConnected(inner, T)
			if err != nil {
				t.Fatal(err)
			}
		}
		p, err := Parse(spec, T, 1)
		if err != nil {
			t.Fatal(err)
		}
		obliv := p.Wrap(base)
		// The adaptive wrapper freezes the reactive adversary's raw graph at
		// each block's first round, so its inner schedule must be connected
		// per round (as a real adaptive adversary is) — wrap the connected
		// inner directly, not the pre-sliced union-connected base.
		adaptive := p.WrapAdaptive(scheduleAdapter{inner})
		for round := 1; round <= 4*T; round++ {
			og := obliv.Graph(round)
			ag := adaptive.Graph(round, nil)
			if strings.Contains(spec, "burst") {
				// The adaptive path freezes the block's first raw graph, the
				// oblivious path re-queries per round: streams legitimately
				// differ per round, but each aligned block must stay
				// union-connected.
				continue
			}
			if !graphsEqual(og, ag) {
				t.Fatalf("plan %q round %d: adaptive wrap diverged from oblivious wrap", spec, round)
			}
		}
		if strings.Contains(spec, "burst") {
			for start := 1; start <= 3*T; start += T {
				acc := adaptive.Graph(start, nil)
				for r := start + 1; r < start+T; r++ {
					next, err := acc.Union(adaptive.Graph(r, nil))
					if err != nil {
						t.Fatal(err)
					}
					acc = next
				}
				if !acc.Connected() {
					t.Fatalf("plan %q: adaptive block at %d not union-connected", spec, start)
				}
			}
		}
	}
}

// scheduleAdapter exposes a pure dynnet.Schedule as an adaptive one.
type scheduleAdapter struct{ s dynnet.Schedule }

func (a scheduleAdapter) N() int { return a.s.N() }

func (a scheduleAdapter) Graph(round int, _ []engine.Message) *dynnet.Multigraph {
	return a.s.Graph(round)
}
