package faults_test

import (
	"fmt"
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
)

// TestMatrixFaultArithmeticEquivalence layers the solver's witness
// discipline over the PR 5 fault matrix: every in-model fault plan, in
// leader and leaderless mode, under both engine schedulers, must produce
// byte-identical protocol executions (same rounds, levels, resets, answer)
// whether the counting solver runs the multi-modular backend or the
// big.Int exactness witness. The backends may differ only in the modular
// work counters — and the modular run must carry itself without ever
// falling back to the witness. Runs under -race in CI.
func TestMatrixFaultArithmeticEquivalence(t *testing.T) {
	plans := []string{
		"spike:5:30",
		"cut:3:20",
		"storm:1:0:3",
		"spike:4:16,storm:1:0:2",
	}
	n := 5
	for _, T := range []int{1, 4} {
		for _, spec := range plans {
			for _, sched := range []engine.Scheduler{engine.SchedulerSequential, engine.SchedulerConcurrent} {
				for _, leaderless := range []bool{false, true} {
					mode := "leader"
					if leaderless {
						mode = "leaderless"
					}
					t.Run(fmt.Sprintf("%s/T=%d/sched=%d/%s", mode, T, sched, spec), func(t *testing.T) {
						runWith := func(a historytree.Arith) *core.RunResult {
							plan, err := faults.Parse(spec, T, 7)
							if err != nil {
								t.Fatal(err)
							}
							inner := dynnet.NewRandomConnected(n, 0.5, int64(T)*101+3)
							cfg := core.Config{Mode: core.ModeLeader, BlockT: T, MaxLevels: 3*n + 8, Arithmetic: a}
							inputs := leaderIn(n)
							if leaderless {
								cfg.Mode = core.ModeLeaderless
								cfg.DiamBound = n * T
								inputs = valueIn(n)
							}
							res, err := core.Run(wrapT(t, inner, plan, T), inputs, cfg,
								core.RunOptions{Scheduler: sched})
							if err != nil {
								t.Fatalf("arith=%v: %v", a, err)
							}
							return res
						}
						mod := runWith(historytree.ArithModular)
						big := runWith(historytree.ArithBig)

						if mod.N != big.N {
							t.Fatalf("counts diverge: modular %d, big %d", mod.N, big.N)
						}
						if (mod.Frequencies == nil) != (big.Frequencies == nil) {
							t.Fatalf("frequency presence diverges")
						}
						if mod.Frequencies != nil {
							if mod.Frequencies.MinSize != big.Frequencies.MinSize {
								t.Fatalf("minimal sizes diverge: modular %d, big %d",
									mod.Frequencies.MinSize, big.Frequencies.MinSize)
							}
							for in, s := range big.Frequencies.Shares {
								if mod.Frequencies.Shares[in] != s {
									t.Fatalf("share of %v diverges: modular %d, big %d",
										in, mod.Frequencies.Shares[in], s)
								}
							}
						}
						if mod.Stats.Rounds != big.Stats.Rounds ||
							mod.Stats.Levels != big.Stats.Levels ||
							mod.Stats.Resets != big.Stats.Resets {
							t.Fatalf("executions diverge: modular rounds=%d levels=%d resets=%d, big rounds=%d levels=%d resets=%d",
								mod.Stats.Rounds, mod.Stats.Levels, mod.Stats.Resets,
								big.Stats.Rounds, big.Stats.Levels, big.Stats.Resets)
						}
						if mod.Stats.SolverWitnessFalls != 0 {
							t.Errorf("modular backend fell back to the witness %d times", mod.Stats.SolverWitnessFalls)
						}
						if mod.Stats.SolverPrimes < 2 {
							t.Errorf("modular backend reports %d primes, want >= 2", mod.Stats.SolverPrimes)
						}
						if big.Stats.SolverPrimes != 0 || big.Stats.SolverCRTRecons != 0 {
							t.Errorf("big backend reports modular counters: %+v", big.Stats)
						}
					})
				}
			}
		}
	}
}
