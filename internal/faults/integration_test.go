package faults_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
)

// leaderIn builds n inputs with process 0 as the leader.
func leaderIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	in[0].Leader = true
	return in
}

// valueIn builds n leaderless inputs with values i mod 2.
func valueIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	for i := range in {
		in[i].Value = int64(i % 2)
	}
	return in
}

// wrapT turns a connected inner schedule into a T-union-connected one for
// T > 1 and wraps the plan over it.
func wrapT(t *testing.T, inner dynnet.Schedule, plan *faults.Plan, T int) dynnet.Schedule {
	t.Helper()
	base := inner
	if T > 1 {
		uc, err := dynnet.NewUnionConnected(inner, T)
		if err != nil {
			t.Fatal(err)
		}
		base = uc
	}
	return plan.Wrap(base)
}

// TestMatrixInModelFaultsStillCount is the integration matrix of the fault
// suite: leader-mode and leaderless runs, T ∈ {1, 2, 4, 8}, under every
// in-model fault plan, must still produce the exact ground truth — with
// the invariant checker attached to every run, so reset monotonicity and
// history-tree well-formedness are asserted live and post-hoc.
func TestMatrixInModelFaultsStillCount(t *testing.T) {
	plans := []string{
		"spike:5:30",
		"cut:3:20",
		"storm:1:0:3",
		"burst:1:0",
		"spike:4:16,storm:1:0:2",
	}
	n := 5
	for _, T := range []int{1, 2, 4, 8} {
		for _, spec := range plans {
			plan, err := faults.Parse(spec, T, 7)
			if err != nil {
				t.Fatal(err)
			}
			inner := dynnet.NewRandomConnected(n, 0.5, int64(T)*101+3)

			t.Run(fmt.Sprintf("leader/T=%d/%s", T, spec), func(t *testing.T) {
				inputs := leaderIn(n)
				cfg := core.Config{Mode: core.ModeLeader, BlockT: T, MaxLevels: 3*n + 8}
				checker := check.New(inputs)
				checker.Attach(&cfg)
				res, err := core.Run(wrapT(t, inner, plan, T), inputs, cfg, core.RunOptions{})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.N != n {
					t.Fatalf("counted %d, want %d", res.N, n)
				}
				if err := checker.Verify(res); err != nil {
					t.Fatalf("invariant checker: %v", err)
				}
			})

			t.Run(fmt.Sprintf("leaderless/T=%d/%s", T, spec), func(t *testing.T) {
				inputs := valueIn(n)
				cfg := core.Config{
					Mode:      core.ModeLeaderless,
					DiamBound: n * T,
					BlockT:    T,
					MaxLevels: 3*n + 8,
				}
				checker := check.New(inputs)
				checker.Attach(&cfg)
				res, err := core.Run(wrapT(t, inner, plan, T), inputs, cfg, core.RunOptions{})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if err := checker.Verify(res); err != nil {
					t.Fatalf("invariant checker: %v", err)
				}
			})
		}
	}
}

// TestGeneralizedCountingUnderFaults runs the Generalized Counting
// extension (input level + value multiset) under a combined in-model plan.
func TestGeneralizedCountingUnderFaults(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true}, {Value: 1}, {Value: 1}, {Value: 2}, {Value: 2}, {Value: 2},
	}
	n := len(inputs)
	plan, err := faults.Parse("spike:6:20,storm:1:0:2", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: core.ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 8}
	checker := check.New(inputs)
	checker.Attach(&cfg)
	res, err := core.Run(plan.Wrap(dynnet.NewRandomConnected(n, 0.5, 8)), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d, want %d", res.N, n)
	}
	if res.Multiset[historytree.Input{Value: 2}] != 3 {
		t.Fatalf("multiset: %v", res.Multiset)
	}
	if err := checker.Verify(res); err != nil {
		t.Fatalf("invariant checker: %v", err)
	}
}

// TestPinnedSpikePlanForcesReset is the seeded regression the fault suite
// is anchored on: this exact plan over this exact schedule provably forces
// the error/reset machinery to fire at least once (the protocol calibrates
// its diameter estimate on the complete prefix, then the spike stretches
// the dynamic diameter to Θ(n) and acknowledgments miss their deadline),
// and the run still counts exactly. If a refactor of the reset machinery
// makes this pass trivially (zero resets) or fail, it changed protocol
// behaviour.
func TestPinnedSpikePlanForcesReset(t *testing.T) {
	const (
		n        = 6
		planSpec = "spike:8:0"
		seed     = 42
	)
	plan, err := faults.Parse(planSpec, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	inputs := leaderIn(n)
	cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
	checker := check.New(inputs)
	checker.Attach(&cfg)
	res, err := core.Run(plan.Wrap(dynnet.NewStatic(dynnet.Complete(n))), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d, want %d", res.N, n)
	}
	if res.Stats.Resets < 1 {
		t.Fatalf("pinned plan %q forced %d resets, want ≥ 1", planSpec, res.Stats.Resets)
	}
	if err := checker.Verify(res); err != nil {
		t.Fatalf("invariant checker: %v", err)
	}
	t.Logf("pinned plan %q: rounds=%d resets=%d finalDiam=%d",
		planSpec, res.Stats.Rounds, res.Stats.Resets, res.Stats.FinalDiamEstimate)
}

// TestOutOfModelFaultsFailDetectably is the watchdog contract: under
// out-of-model faults the run may never produce an answer, but it must
// terminate with a structured *engine.WatchdogError within the deadline —
// no hangs, no stuck goroutines (this test runs under -race in CI).
func TestOutOfModelFaultsFailDetectably(t *testing.T) {
	cases := []struct {
		name string
		spec string
		halt bool
	}{
		// Every link dropped forever: each process is permanently isolated.
		// Under SimultaneousHalt the leader halts alone (it counts only
		// itself) while the others can never receive the Halt broadcast, so
		// the run is wedged until the watchdog ends it.
		{name: "all-links-dropped", spec: "drop:1:0:1", halt: true},
		// The crashed leader never acknowledges anything; MaxLevels is
		// uncapped so the wedge cannot exit through the level guard.
		{name: "leader-crashed-forever", spec: "crash:0:3:0"},
	}
	n := 5
	for _, sched := range []engine.Scheduler{engine.SchedulerSequential, engine.SchedulerConcurrent} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/scheduler=%d", tc.name, sched), func(t *testing.T) {
				plan, err := faults.Parse(tc.spec, 1, 9)
				if err != nil {
					t.Fatal(err)
				}
				if plan.InModel() {
					t.Fatalf("plan %q must be out-of-model", tc.spec)
				}
				cfg := core.Config{Mode: core.ModeLeader, SimultaneousHalt: tc.halt}
				opts := core.RunOptions{
					Deadline:  100 * time.Millisecond,
					MaxRounds: 1 << 30, // the watchdog, not the round cap, must end the run
					Scheduler: sched,
				}
				start := time.Now()
				_, err = core.Run(plan.Wrap(dynnet.NewRandomConnected(n, 0.5, 4)), leaderIn(n), cfg, opts)
				if !errors.Is(err, engine.ErrWatchdog) {
					t.Fatalf("got %v, want ErrWatchdog", err)
				}
				var wderr *engine.WatchdogError
				if !errors.As(err, &wderr) {
					t.Fatalf("error %v is not a *WatchdogError", err)
				}
				if elapsed := time.Since(start); elapsed > 10*time.Second {
					t.Fatalf("watchdog needed %v to stop the run", elapsed)
				}
			})
		}
	}
}

// TestCheckerCatchesSilentlyWrongAnswer documents the second detectability
// channel: basic-mode total disconnection does NOT hang — the anonymous
// leader cannot distinguish "alone" from "unreachable peers", terminates,
// and reports n = 1. The run itself succeeds; it is the invariant
// checker's ground-truth comparison that turns the silent wrong answer
// into a failure.
func TestCheckerCatchesSilentlyWrongAnswer(t *testing.T) {
	n := 5
	plan, err := faults.Parse("drop:1:0:1", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	inputs := leaderIn(n)
	cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
	checker := check.New(inputs)
	checker.Attach(&cfg)
	res, err := core.Run(plan.Wrap(dynnet.NewRandomConnected(n, 0.5, 4)), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatalf("an isolated leader must still terminate cleanly: %v", err)
	}
	if res.N == n {
		t.Fatalf("a fully disconnected run cannot count %d processes", n)
	}
	if err := checker.Verify(res); err == nil {
		t.Fatal("checker accepted a wrong count")
	}
}

// TestInModelFaultsMatchFaultFreeAnswer pins that in-model faults change
// the execution (rounds differ) but never the answer.
func TestInModelFaultsMatchFaultFreeAnswer(t *testing.T) {
	n := 6
	inner := dynnet.NewRandomConnected(n, 0.4, 15)
	clean, err := core.Run(inner, leaderIn(n),
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("cut:2:25,storm:1:0:2", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := core.Run(plan.Wrap(inner), leaderIn(n),
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.N != faulted.N {
		t.Fatalf("fault-free count %d vs faulted count %d", clean.N, faulted.N)
	}
}
