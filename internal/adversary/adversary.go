// Package adversary provides reactive (strongly adaptive) network
// adversaries: schedules that choose each round's multigraph after
// inspecting the messages being sent. For the paper's deterministic
// protocol an adaptive adversary is no more powerful than an oblivious one
// in principle, but reactive adversaries are the natural way to express
// worst cases — such as maximally delaying whichever message currently has
// the highest broadcast priority.
package adversary

import (
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// Isolator is the worst-case adversary for priority broadcast: every round
// it arranges the processes on a path with the current holders of the
// highest-priority protocol message at one end and a designated target
// process (the leader) at the other, so the top message crawls one hop per
// round. It keeps the network connected at every round, as the Section 3
// algorithm requires, so the protocol must still terminate — after driving
// DiamEstimate to its Θ(n) ceiling (Lemma 4.7).
type Isolator struct {
	n      int
	target int
}

var _ engine.AdaptiveSchedule = (*Isolator)(nil)

// NewIsolator returns an isolating adversary for n processes that keeps
// the given target process (usually the leader) farthest from the
// highest-priority message.
func NewIsolator(n, target int) *Isolator {
	return &Isolator{n: n, target: target}
}

// N implements engine.AdaptiveSchedule.
func (a *Isolator) N() int { return a.n }

// Graph implements engine.AdaptiveSchedule.
func (a *Isolator) Graph(_ int, sent []engine.Message) *dynnet.Multigraph {
	// Rank the senders by the priority of their message; unknown or absent
	// messages rank lowest.
	top := -1
	var topMsg wire.Message
	for pid, raw := range sent {
		m, ok := wire.FromBox(raw)
		if !ok {
			continue
		}
		if top < 0 || core.Higher(m, topMsg) {
			top, topMsg = pid, m
		}
	}

	// Path layout: holders of the top message first, then the remaining
	// processes, with the target at the far end.
	holders := make([]int, 0, a.n)
	middle := make([]int, 0, a.n)
	for pid, raw := range sent {
		if pid == a.target {
			continue
		}
		m, ok := wire.FromBox(raw)
		if ok && top >= 0 && core.Compare(m, topMsg) == 0 {
			holders = append(holders, pid)
			continue
		}
		middle = append(middle, pid)
	}
	order := append(holders, middle...)
	if a.target < a.n {
		order = append(order, a.target)
	}

	g := dynnet.NewMultigraph(a.n)
	for i := 0; i+1 < len(order); i++ {
		g.MustAddLink(order[i], order[i+1], 1)
	}
	return g
}

// DiamSpiker is the reset-forcing adversary: it serves a complete graph
// (dynamic diameter 1) until it sees the first Edge or Done message in
// flight — i.e. until the processes have calibrated their DiamEstimate on
// the easy topology and started broadcasting VHT content — then switches
// permanently to a shifting path (dynamic diameter Θ(n)). Acknowledgments
// that were promised within the old estimate now miss their deadline,
// which must fire the error/reset machinery of Section 4: the protocol
// survives (the network stays connected every round) but only after ≥ 1
// leader reset doubles the estimate. It is the adaptive-adversary
// counterpart of the oblivious spike fault (faults.DiamSpike).
type DiamSpiker struct {
	n       int
	spiking bool
}

var _ engine.AdaptiveSchedule = (*DiamSpiker)(nil)

// NewDiamSpiker returns a diameter-spiking adversary for n processes.
func NewDiamSpiker(n int) *DiamSpiker {
	return &DiamSpiker{n: n}
}

// N implements engine.AdaptiveSchedule.
func (a *DiamSpiker) N() int { return a.n }

// Graph implements engine.AdaptiveSchedule.
func (a *DiamSpiker) Graph(round int, sent []engine.Message) *dynnet.Multigraph {
	if !a.spiking {
		for _, raw := range sent {
			m, ok := wire.FromBox(raw)
			if !ok {
				continue
			}
			if m.Label == wire.LabelEdge || m.Label == wire.LabelEdgeBatch || m.Label == wire.LabelDone {
				a.spiking = true
				break
			}
		}
	}
	if a.spiking {
		return dynnet.NewShiftingPath(a.n).Graph(round)
	}
	return dynnet.Complete(a.n)
}

// RunCountingUnderIsolator runs the leader-mode counting protocol against
// the Isolator (process 0 as the targeted leader) and returns the core
// result. It is a convenience wrapper used by tests, benchmarks, and
// cmd/cadn.
func RunCountingUnderIsolator(n int, cfg core.Config, opts core.RunOptions) (*core.RunResult, error) {
	inputs := make([]historytree.Input, n)
	if n > 0 {
		inputs[0].Leader = true
	}
	return core.RunAdaptive(NewIsolator(n, 0), inputs, cfg, opts)
}
