package adversary

import (
	"testing"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

func TestIsolatorGraphsAreConnectedPaths(t *testing.T) {
	a := NewIsolator(6, 0)
	sent := []engine.Message{
		wire.Null(), wire.Edge(1, 2, 3), wire.Null(), wire.Edge(1, 2, 3), wire.Done(5), nil,
	}
	g := a.Graph(1, sent)
	if !g.Connected() {
		t.Fatal("adversary must keep the network connected")
	}
	if g.LinkCount() != 5 {
		t.Fatalf("path on 6 should have 5 links, got %d", g.LinkCount())
	}
	// The target (0) must be a path endpoint, and the top-message holders
	// (1 and 3, holding the Edge) must occupy the other end.
	if g.Degree(0) != 1 {
		t.Errorf("target degree %d, want 1 (path endpoint)", g.Degree(0))
	}
	// Holders 1 and 3 must be adjacent to each other at the far end:
	// exactly one of them is the other endpoint.
	endpoints := 0
	for _, pid := range []int{1, 3} {
		if g.Degree(pid) == 1 {
			endpoints++
		}
	}
	if endpoints != 1 {
		t.Errorf("expected exactly one holder at the far endpoint, got %d", endpoints)
	}
	if g.Neighbors(1)[3] == 0 && g.Neighbors(3)[1] == 0 {
		t.Error("top-message holders should be contiguous on the path")
	}
}

func TestCountingSurvivesIsolator(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		rec := core.NewRecorder()
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8, Recorder: rec}
		res, err := RunCountingUnderIsolator(n, cfg, core.RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.N != n {
			t.Fatalf("n=%d: counted %d", n, res.N)
		}
		if res.Stats.FinalDiamEstimate > 4*n {
			t.Errorf("n=%d: final estimate %d exceeds 4n (Lemma 4.7)", n, res.Stats.FinalDiamEstimate)
		}
		t.Logf("n=%d: rounds=%d resets=%d finalDiam=%d",
			n, res.Stats.Rounds, res.Stats.Resets, res.Stats.FinalDiamEstimate)
	}
}

func TestIsolatorForcesWorstCaseDiameter(t *testing.T) {
	// Against the isolator, the diameter estimate must be driven to ≥ n/2
	// (the message has to cross the whole path), unlike on benign random
	// graphs where it settles at 2–4.
	n := 8
	res, err := RunCountingUnderIsolator(n,
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalDiamEstimate < n/2 {
		t.Errorf("final estimate %d suspiciously small for an isolating adversary", res.Stats.FinalDiamEstimate)
	}
	if res.Stats.Resets < 2 {
		t.Errorf("expected repeated resets, got %d", res.Stats.Resets)
	}
}

func TestIsolatorWithFineGrainedResets(t *testing.T) {
	n := 6
	cfg := core.Config{Mode: core.ModeLeader, FineGrainedReset: true, MaxLevels: 3*n + 8}
	res, err := RunCountingUnderIsolator(n, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
}

func TestDiamSpikerServesCompleteUntilContentFlows(t *testing.T) {
	a := NewDiamSpiker(5)
	// Control traffic (Null, Begin) must not trigger the spike.
	g := a.Graph(1, []engine.Message{wire.Null(), wire.Begin(0), nil})
	if g.LinkCount() != 5*4/2 {
		t.Fatalf("pre-spike graph should be complete, got %d links", g.LinkCount())
	}
	// The first Edge in flight flips the adversary permanently.
	g = a.Graph(2, []engine.Message{wire.Edge(1, 2, 1)})
	if g.LinkCount() == 5*4/2 {
		t.Fatal("adversary did not spike on Edge traffic")
	}
	for round := 3; round <= 6; round++ {
		g := a.Graph(round, nil)
		if !g.Connected() {
			t.Fatalf("round %d: spiked graph disconnected", round)
		}
		if g.LinkCount() != 4 {
			t.Fatalf("round %d: spiked graph is not a path (%d links)", round, g.LinkCount())
		}
	}
}

func TestDiamSpikerForcesResetAndStillCounts(t *testing.T) {
	for _, n := range []int{4, 6} {
		inputs := make([]historytree.Input, n)
		inputs[0].Leader = true
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
		checker := check.New(inputs)
		checker.Attach(&cfg)
		res, err := core.RunAdaptive(NewDiamSpiker(n), inputs, cfg, core.RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.N != n {
			t.Fatalf("n=%d: counted %d", n, res.N)
		}
		if res.Stats.Resets < 1 {
			t.Fatalf("n=%d: the spike never fired the reset machinery", n)
		}
		if err := checker.Verify(res); err != nil {
			t.Fatalf("n=%d: invariant checker: %v", n, err)
		}
		t.Logf("n=%d: rounds=%d resets=%d finalDiam=%d",
			n, res.Stats.Rounds, res.Stats.Resets, res.Stats.FinalDiamEstimate)
	}
}
