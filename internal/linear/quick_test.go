package linear_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
	"anondyn/internal/linear"
)

// TestQuickLeaderlessProtocolAgreement is the property-based arm of the
// differential suite: over random (n, density, seed, value-assignment)
// draws, the leaderless frequency vector must be identical between the
// congested and linear protocols under BOTH solver arithmetic backends
// (-arith modular and -arith big) — four runs per draw, all verified
// against ground truth and against each other. testing/quick drives the
// draws from a seeded source so failures replay.
func TestQuickLeaderlessProtocolAgreement(t *testing.T) {
	property := func(nSel, pSel uint8, seed int64, valSel uint16) bool {
		n := 2 + int(nSel)%6          // n ∈ [2, 7]
		p := 0.3 + float64(pSel%8)/16 // density ∈ [0.3, 0.74]
		inputs := make([]historytree.Input, n)
		for i := range inputs {
			// Up to three distinct values, bit-picked from valSel.
			inputs[i].Value = int64((valSel >> (2 * (i % 8))) % 3)
		}

		var want *historytree.FrequencyResult
		for _, arith := range []historytree.Arith{historytree.ArithModular, historytree.ArithBig} {
			for _, protocol := range []string{"congested", "linear"} {
				sched := dynnet.NewRandomConnected(n, p, seed)
				var res *core.RunResult
				var err error
				if protocol == "linear" {
					cfg := linear.Config{Mode: core.ModeLeaderless, DiamBound: n,
						MaxLevels: 3*n + 8, Arithmetic: arith}
					res, err = linear.Run(sched, inputs, cfg, core.RunOptions{})
				} else {
					cfg := core.Config{Mode: core.ModeLeaderless, DiamBound: n,
						MaxLevels: 3*n + 8, Arithmetic: arith}
					res, err = core.Run(sched, inputs, cfg, core.RunOptions{})
				}
				if err != nil {
					t.Logf("n=%d p=%.2f seed=%d %s/%s: %v", n, p, seed, protocol, arith, err)
					return false
				}
				if verr := check.VerifyAnswer(inputs, res); verr != nil {
					t.Logf("n=%d p=%.2f seed=%d %s/%s: %v", n, p, seed, protocol, arith, verr)
					return false
				}
				if want == nil {
					want = res.Frequencies
					continue
				}
				if !sameShares(want, res.Frequencies) {
					t.Logf("n=%d p=%.2f seed=%d %s/%s: %+v, first run said %+v",
						n, p, seed, protocol, arith, res.Frequencies, want)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(202310)), // seeded: failures replay
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeaderProtocolAgreement is the leader-mode counterpart: the
// count and input multiset must agree across protocols and arithmetic
// backends on random generalized-counting instances.
func TestQuickLeaderProtocolAgreement(t *testing.T) {
	property := func(nSel, pSel uint8, seed int64, valSel uint16) bool {
		n := 1 + int(nSel)%7
		p := 0.3 + float64(pSel%8)/16
		inputs := make([]historytree.Input, n)
		inputs[0].Leader = true
		for i := 1; i < n; i++ {
			inputs[i].Value = int64((valSel >> (2 * (i % 8))) % 3)
		}

		wantN := -1
		for _, arith := range []historytree.Arith{historytree.ArithModular, historytree.ArithBig} {
			cfg := linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8, Arithmetic: arith}
			res, err := linear.Run(dynnet.NewRandomConnected(n, p, seed), inputs, cfg, core.RunOptions{})
			if err != nil {
				t.Logf("n=%d p=%.2f seed=%d linear/%s: %v", n, p, seed, arith, err)
				return false
			}
			if verr := check.VerifyAnswer(inputs, res); verr != nil {
				t.Logf("n=%d p=%.2f seed=%d linear/%s: %v", n, p, seed, arith, verr)
				return false
			}
			if wantN == -1 {
				wantN = res.N
			} else if res.N != wantN {
				t.Logf("n=%d p=%.2f seed=%d linear/%s counted %d, modular said %d",
					n, p, seed, arith, res.N, wantN)
				return false
			}
		}
		return wantN == n
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(202311)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
