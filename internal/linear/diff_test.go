package linear_test

import (
	"fmt"
	"testing"
	"time"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
	"anondyn/internal/linear"
)

// This file is the cross-protocol differential suite: the congested
// backend (internal/core) and the linear backend run the same schedules —
// the full PR 5 fault matrix — and must produce identical answers.
// Congested runs carry the full invariant checker; linear answers are
// verified against ground truth with check.VerifyAnswer. Both protocols'
// bit accounting flows through wire.SizeOf, so every subtest also logs the
// measured rounds-vs-bits tradeoff the E17 experiment tabulates.

// schedulers is the engine matrix every equivalence case runs under.
var schedulers = []engine.Scheduler{
	engine.SchedulerSequential, engine.SchedulerParallel, engine.SchedulerConcurrent,
}

// inModelPlans is the PR 5 in-model fault matrix, verbatim from
// internal/faults/integration_test.go.
var inModelPlans = []string{
	"spike:5:30",
	"cut:3:20",
	"storm:1:0:3",
	"burst:1:0",
	"spike:4:16,storm:1:0:2",
}

// faultedSchedule rebuilds the matrix schedule for one (plan, T) cell:
// the seeded random inner schedule, union-connected for T > 1, with the
// fault plan layered on top. Each call constructs a fresh schedule so the
// two protocol runs cannot share mutable state.
func faultedSchedule(t *testing.T, n int, spec string, T int) dynnet.Schedule {
	t.Helper()
	plan, err := faults.Parse(spec, T, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := dynnet.Schedule(dynnet.NewRandomConnected(n, 0.5, int64(T)*101+3))
	if T > 1 {
		uc, err := dynnet.NewUnionConnected(base, T)
		if err != nil {
			t.Fatal(err)
		}
		base = uc
	}
	return plan.Wrap(base)
}

// runCongested executes the congested protocol with the invariant checker
// attached and fully verified.
func runCongested(t *testing.T, s dynnet.Schedule, inputs []historytree.Input,
	mode core.Mode, T int, sched engine.Scheduler) *core.RunResult {
	t.Helper()
	n := len(inputs)
	cfg := core.Config{Mode: mode, BlockT: T, MaxLevels: 3*n + 8}
	if mode == core.ModeLeaderless {
		cfg.DiamBound = n * T
	}
	checker := check.New(inputs)
	checker.Attach(&cfg)
	res, err := core.Run(s, inputs, cfg, core.RunOptions{Scheduler: sched})
	if err != nil {
		t.Fatalf("congested run: %v", err)
	}
	if err := checker.Verify(res); err != nil {
		t.Fatalf("congested invariant checker: %v", err)
	}
	return res
}

// runLinear executes the linear protocol and verifies its answer against
// ground truth.
func runLinear(t *testing.T, s dynnet.Schedule, inputs []historytree.Input,
	mode core.Mode, T int, sched engine.Scheduler) *core.RunResult {
	t.Helper()
	n := len(inputs)
	cfg := linear.Config{Mode: mode, BlockT: T, MaxLevels: 3*n + 8}
	if mode == core.ModeLeaderless {
		cfg.DiamBound = n * T
	}
	res, err := linear.Run(s, inputs, cfg, core.RunOptions{Scheduler: sched})
	if err != nil {
		t.Fatalf("linear run: %v", err)
	}
	if err := check.VerifyAnswer(inputs, res); err != nil {
		t.Fatalf("linear ground truth: %v", err)
	}
	return res
}

// assertSameAnswer is the equivalence oracle: identical count and
// multiset in leader mode, identical frequency vector in leaderless mode.
func assertSameAnswer(t *testing.T, congested, lin *core.RunResult) {
	t.Helper()
	if congested.N != lin.N {
		t.Fatalf("protocols disagree on the count: congested %d, linear %d", congested.N, lin.N)
	}
	if congested.Multiset != nil && lin.Multiset != nil {
		if len(congested.Multiset) != len(lin.Multiset) {
			t.Fatalf("multiset class counts differ: congested %v, linear %v", congested.Multiset, lin.Multiset)
		}
		for in, cnt := range congested.Multiset {
			if lin.Multiset[in] != cnt {
				t.Fatalf("multiset[%v]: congested %d, linear %d", in, cnt, lin.Multiset[in])
			}
		}
	}
	cf, lf := congested.Frequencies, lin.Frequencies
	if (cf == nil) != (lf == nil) {
		t.Fatalf("one protocol returned frequencies, the other did not: %v vs %v", cf, lf)
	}
	if cf != nil {
		if cf.MinSize != lf.MinSize || len(cf.Shares) != len(lf.Shares) {
			t.Fatalf("frequency vectors differ: congested %+v, linear %+v", cf, lf)
		}
		for in, s := range cf.Shares {
			if lf.Shares[in] != s {
				t.Fatalf("share[%v]: congested %d, linear %d", in, s, lf.Shares[in])
			}
		}
	}
}

// assertBitAccounting asserts both runs carried honest wire.SizeOf-based
// accounting, and logs the measured rounds-vs-bits tradeoff.
func assertBitAccounting(t *testing.T, congested, lin *core.RunResult) {
	t.Helper()
	for name, res := range map[string]*core.RunResult{"congested": congested, "linear": lin} {
		if res.Stats.TotalBits <= 0 || res.Stats.MaxMessageBits <= 0 || res.Stats.TotalMessages <= 0 {
			t.Fatalf("%s run lost its bit accounting: %+v", name, res.Stats)
		}
	}
	t.Logf("tradeoff: congested rounds=%d totalBits=%d maxBits=%d | linear rounds=%d totalBits=%d maxBits=%d",
		congested.Stats.Rounds, congested.Stats.TotalBits, congested.Stats.MaxMessageBits,
		lin.Stats.Rounds, lin.Stats.TotalBits, lin.Stats.MaxMessageBits)
}

// TestProtocolEquivalenceFaultMatrix is the headline differential suite:
// on every schedule of the PR 5 in-model fault matrix — leader and
// leaderless, T ∈ {1, 2, 4, 8}, every fault family, all three engine
// schedulers — both protocols must return the identical answer, each
// independently verified against ground truth.
func TestProtocolEquivalenceFaultMatrix(t *testing.T) {
	n := 5
	for _, sched := range schedulers {
		for _, T := range []int{1, 2, 4, 8} {
			for _, spec := range inModelPlans {
				t.Run(fmt.Sprintf("leader/sched=%d/T=%d/%s", sched, T, spec), func(t *testing.T) {
					inputs := leaderIn(n)
					congested := runCongested(t, faultedSchedule(t, n, spec, T), inputs, core.ModeLeader, T, sched)
					lin := runLinear(t, faultedSchedule(t, n, spec, T), inputs, core.ModeLeader, T, sched)
					assertSameAnswer(t, congested, lin)
					assertBitAccounting(t, congested, lin)
				})
				t.Run(fmt.Sprintf("leaderless/sched=%d/T=%d/%s", sched, T, spec), func(t *testing.T) {
					inputs := valueIn(n)
					congested := runCongested(t, faultedSchedule(t, n, spec, T), inputs, core.ModeLeaderless, T, sched)
					lin := runLinear(t, faultedSchedule(t, n, spec, T), inputs, core.ModeLeaderless, T, sched)
					assertSameAnswer(t, congested, lin)
					assertBitAccounting(t, congested, lin)
				})
			}
		}
	}
}

// TestProtocolEquivalenceGeneralized extends the differential suite to
// Generalized Counting: a non-trivial input multiset under a combined
// in-model plan, mirroring TestGeneralizedCountingUnderFaults.
func TestProtocolEquivalenceGeneralized(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true}, {Value: 1}, {Value: 1}, {Value: 2}, {Value: 2}, {Value: 2},
	}
	n := len(inputs)
	mkSched := func() dynnet.Schedule {
		plan, err := faults.Parse("spike:6:20,storm:1:0:2", 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Wrap(dynnet.NewRandomConnected(n, 0.5, 8))
	}

	cfg := core.Config{Mode: core.ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 8}
	checker := check.New(inputs)
	checker.Attach(&cfg)
	congested, err := core.Run(mkSched(), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(congested); err != nil {
		t.Fatal(err)
	}

	lin := runLinear(t, mkSched(), inputs, core.ModeLeader, 1, engine.SchedulerSequential)
	assertSameAnswer(t, congested, lin)
	if lin.Multiset[historytree.Input{Value: 2}] != 3 {
		t.Fatalf("linear multiset: %v", lin.Multiset)
	}
}

// failsDetectably runs one protocol over an out-of-model schedule and
// reports how the failure surfaced: a structured error, or an answer the
// ground-truth oracle rejects. A clean run with a verified answer returns
// false — the silent-corruption case the suite exists to rule out.
func failsDetectably(t *testing.T, protocol string, s dynnet.Schedule,
	inputs []historytree.Input, sched engine.Scheduler) (bool, string) {
	t.Helper()
	n := len(inputs)
	opts := core.RunOptions{
		Deadline:  100 * time.Millisecond,
		MaxRounds: 1 << 30, // the watchdog or the oracle must end it, not the round cap
		Scheduler: sched,
	}
	var res *core.RunResult
	var err error
	if protocol == "linear" {
		res, err = linear.Run(s, inputs, linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, opts)
	} else {
		res, err = core.Run(s, inputs, core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, opts)
	}
	if err != nil {
		return true, fmt.Sprintf("structured error: %v", err)
	}
	if err := check.VerifyAnswer(inputs, res); err != nil {
		return true, fmt.Sprintf("ground-truth rejection: %v", err)
	}
	return false, ""
}

// TestProtocolsFailDetectablyOutOfModel mirrors the PR 5 out-of-model
// cases on both protocols: neither may return a silently wrong answer.
// Total message loss makes the anonymous leader count only itself (caught
// by the oracle) under both protocols; a forever-crashed leader wedges
// the run until the watchdog or the level guard ends it.
func TestProtocolsFailDetectablyOutOfModel(t *testing.T) {
	n := 5
	cases := []string{"drop:1:0:1", "crash:0:3:0"}
	for _, sched := range []engine.Scheduler{engine.SchedulerSequential, engine.SchedulerConcurrent} {
		for _, spec := range cases {
			for _, protocol := range []string{"congested", "linear"} {
				t.Run(fmt.Sprintf("%s/%s/sched=%d", protocol, spec, sched), func(t *testing.T) {
					plan, err := faults.Parse(spec, 1, 9)
					if err != nil {
						t.Fatal(err)
					}
					if plan.InModel() {
						t.Fatalf("plan %q must be out-of-model", spec)
					}
					s := plan.Wrap(dynnet.NewRandomConnected(n, 0.5, 4))
					detected, how := failsDetectably(t, protocol, s, leaderIn(n), sched)
					if !detected {
						t.Fatalf("%s returned a verified answer under out-of-model plan %q", protocol, spec)
					}
					t.Logf("%s failed detectably: %s", protocol, how)
				})
			}
		}
	}
}
