package linear

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"anondyn/internal/core"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/ints"
	"anondyn/internal/wire"
)

// classInfo describes one hash-consed history-tree class: its level, its
// parent class, the multiset of classes it heard from during its block
// (with multiplicities) and, for level-0 classes, the input.
type classInfo struct {
	level  int32
	parent int32 // class ID of the parent; -1 for level-0 classes
	reds   []redRef
	input  historytree.Input
}

type redRef struct {
	src  int32 // class ID at level-1
	mult int32
}

// interner hash-conses classInfos into dense integer IDs, shared by all
// processes of a run: two processes constructing structurally identical
// classes obtain the same ID, which is exactly the "merge equivalent view
// nodes" step of the full-information protocol — realized without
// re-encoding entire subtrees into every message. ID assignment order
// depends on scheduler interleaving, so nothing observable may depend on
// the numeric IDs; the canonical view serialization orders classes by
// content instead (see buildView).
type interner struct {
	mu     sync.Mutex
	byKey  map[string]int32
	infos  []classInfo
	keyBuf []byte // mu-guarded key-rendering scratch
}

func newInterner() *interner {
	return &interner{byKey: make(map[string]int32)}
}

// intern returns the class ID for the given description, registering it
// if new and taking ownership of the reds slice. reds must be in
// canonical (sorted by src) order.
func (in *interner) intern(ci classInfo) int32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	// Injective byte rendering ('|' and '*' never occur inside a decimal
	// field), built in a lock-guarded scratch buffer so lookups of known
	// classes allocate nothing.
	buf := in.keyBuf[:0]
	buf = ints.AppendInt(buf, int(ci.level))
	buf = append(buf, '|')
	buf = ints.AppendInt(buf, int(ci.parent))
	for _, r := range ci.reds {
		buf = append(buf, '|')
		buf = ints.AppendInt(buf, int(r.src))
		buf = append(buf, '*')
		buf = ints.AppendInt(buf, int(r.mult))
	}
	buf = append(buf, '|')
	if ci.input.Leader {
		buf = append(buf, 'L')
	}
	buf = ints.AppendInt(buf, int(ci.input.Value))
	in.keyBuf = buf
	if id, ok := in.byKey[string(buf)]; ok {
		return id
	}
	id := int32(len(in.infos))
	in.infos = append(in.infos, ci)
	in.byKey[string(buf)] = id
	return id
}

// snapshot returns a read-only prefix of the registered classInfos.
// Entries are never mutated after registration and appends never write
// below the returned length, so the snapshot may be read without the
// lock.
func (in *interner) snapshot() []classInfo {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.infos[:len(in.infos):len(in.infos)]
}

// viewMsg is the full-information engine message: an immutable snapshot
// of the sender's class-ID set plus the sender's current class. The bits
// field carries the canonical wire size (computed once at send time via
// wire.SizeOf over the class-ordered wire.View), which the engine's
// SizeOf hook reports for congestion accounting.
type viewMsg struct {
	classes []int32
	self    int32
	bits    int
}

// sizeOfMessage is the engine SizeOf hook: viewMsg sizes are precomputed
// at send time.
func sizeOfMessage(m engine.Message) int {
	if vm, ok := m.(*viewMsg); ok {
		return vm.bits
	}
	return 0
}

// idSet is a growable bitset over dense class IDs.
type idSet struct{ bits []uint64 }

func (s *idSet) has(id int32) bool {
	w := int(id >> 6)
	return w < len(s.bits) && s.bits[w]>>(uint(id)&63)&1 == 1
}

func (s *idSet) add(id int32) {
	w := int(id >> 6)
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(id) & 63)
}

// process is one full-information participant.
type process struct {
	itn   *interner
	cfg   Config
	input historytree.Input

	solveTime  time.Duration
	solveCalls int
}

// run is the process coroutine: per block of T real rounds it broadcasts
// its current view every round, merges everything it hears, then refines
// itself into a new class from the block's delivery multiset and checks
// its mode's decision rule.
func (p *process) run(tr *engine.Transport) (any, error) {
	T := p.cfg.blockT()
	self := p.itn.intern(classInfo{level: 0, parent: -1, input: p.input})
	classes := []int32{self}
	var have idSet
	have.add(self)
	heard := make(map[int32]int32)

	for {
		for j := 0; j < T; j++ {
			msg := &viewMsg{classes: classes[:len(classes):len(classes)], self: self}
			msg.bits = wire.SizeOf(buildView(p.itn.snapshot(), msg.classes, msg.self))
			msgs, err := tr.SendAndReceive(msg)
			if err != nil {
				return nil, err
			}
			for _, raw := range msgs {
				m, ok := raw.(*viewMsg)
				if !ok {
					return nil, fmt.Errorf("linear: unexpected message %T", raw)
				}
				for _, id := range m.classes {
					if !have.has(id) {
						have.add(id)
						classes = append(classes, id)
					}
				}
				heard[m.self]++
			}
		}
		level := int32(tr.Round() / T)
		reds := make([]redRef, 0, len(heard))
		for src, mult := range heard {
			reds = append(reds, redRef{src: src, mult: mult})
		}
		sort.Slice(reds, func(i, j int) bool { return reds[i].src < reds[j].src })
		clear(heard)
		self = p.itn.intern(classInfo{level: level, parent: self, reds: reds})
		if !have.has(self) {
			have.add(self)
			classes = append(classes, self)
		}

		depth := int(level)
		if p.cfg.MaxLevels > 0 && depth > p.cfg.MaxLevels {
			return nil, fmt.Errorf("linear: view reached %d levels without a decision (MaxLevels %d)",
				depth, p.cfg.MaxLevels)
		}
		oc, err := p.decide(depth, classes, tr)
		if err != nil {
			return nil, err
		}
		if oc != nil {
			return oc, nil
		}
	}
}

// decide applies the mode's decision rule at the current block depth and
// returns a non-nil Outcome once the process can output.
func (p *process) decide(depth int, classes []int32, tr *engine.Transport) (*core.Outcome, error) {
	T := p.cfg.blockT()
	switch p.cfg.Mode {
	case core.ModeLeader:
		if !p.input.Leader {
			return nil, nil
		}
		tree, err := p.materialize(classes)
		if err != nil {
			return nil, err
		}
		// Scan completeness candidates from the shallowest up: the first
		// prefix that resolves the system has maximum slack, i.e. is the
		// most likely to be genuinely complete. If the depth condition
		// fails, wait for more blocks instead of trusting deeper (less
		// settled) prefixes.
		limit := chainComplete(tree, depth)
		for c := 0; c <= limit; c++ {
			res, err := p.countAt(tree, c)
			if err != nil {
				// Levels wrongly assumed complete; not settled yet.
				break
			}
			if !res.Known {
				continue
			}
			if depth >= c+res.N {
				return &core.Outcome{
					N: res.N, Multiset: res.Multiset, VHT: tree,
					Levels: depth, FinalRound: tr.Round(),
					Solver: historytree.SolverStats{Calls: p.solveCalls, SolveTime: p.solveTime},
				}, nil
			}
			break
		}
		return nil, nil
	case core.ModeLeaderless:
		// Only prefixes a full diameter bound behind the frontier are
		// provably complete AND provably present in every process's view,
		// so scanning exactly those keeps all processes in lockstep: they
		// resolve the same c at the same block and output together.
		lag := (p.cfg.DiamBound + T - 1) / T
		if depth < lag {
			return nil, nil
		}
		tree, err := p.materialize(classes)
		if err != nil {
			return nil, err
		}
		limit := depth - lag
		if cc := chainComplete(tree, limit); cc < limit {
			limit = cc
		}
		for c := 0; c <= limit; c++ {
			res, err := p.frequenciesAt(tree, c)
			if err != nil {
				break
			}
			if !res.Known {
				continue
			}
			return &core.Outcome{
				Frequencies: &res, VHT: tree,
				Levels: depth, FinalRound: tr.Round(), FinalDiamEstimate: p.cfg.DiamBound,
				Solver: historytree.SolverStats{Calls: p.solveCalls, SolveTime: p.solveTime},
			}, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("linear: unknown mode %d", p.cfg.Mode)
}

// countAt runs the counting solver with timing accounted to the process.
func (p *process) countAt(tree *historytree.Tree, c int) (historytree.CountResult, error) {
	start := time.Now()
	res, err := historytree.CountWith(tree, c, p.cfg.Arithmetic)
	p.solveTime += time.Since(start)
	p.solveCalls++
	return res, err
}

// frequenciesAt runs the frequency solver with timing accounted to the
// process.
func (p *process) frequenciesAt(tree *historytree.Tree, c int) (historytree.FrequencyResult, error) {
	start := time.Now()
	res, err := historytree.FrequenciesWith(tree, c, p.cfg.Arithmetic)
	p.solveTime += time.Since(start)
	p.solveCalls++
	return res, err
}

// chainComplete returns the deepest candidate c ≤ depth such that every
// node at levels 0..c-1 has at least one child in the view — a necessary
// condition for levels 0..c to be complete (every true class is refined
// by its members every block), checked before the solver runs so
// structurally incomplete prefixes are never assumed complete.
func chainComplete(t *historytree.Tree, depth int) int {
	for l := 0; l < depth; l++ {
		for _, v := range t.Level(l) {
			if len(v.Children) == 0 {
				return l
			}
		}
	}
	return depth
}

// materialize builds a historytree.Tree from the class-ID set. Global
// class IDs become node IDs; views are closed under parents and red
// sources by construction (whole views are merged), so the lookups
// cannot miss.
func (p *process) materialize(classes []int32) (*historytree.Tree, error) {
	infos := p.itn.snapshot()
	ids := append([]int32(nil), classes...)
	// Order by level, then ID, so parents precede children.
	sort.Slice(ids, func(i, j int) bool {
		li, lj := infos[ids[i]].level, infos[ids[j]].level
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	t := historytree.New()
	for _, id := range ids {
		ci := infos[id]
		parent := t.Root()
		if ci.parent >= 0 {
			parent = t.NodeByID(int(ci.parent))
			if parent == nil {
				return nil, fmt.Errorf("linear: view not closed under parents (class %d)", id)
			}
		}
		node, err := t.AddChild(int(id), parent, ci.input)
		if err != nil {
			return nil, err
		}
		for _, r := range ci.reds {
			src := t.NodeByID(int(r.src))
			if src == nil {
				return nil, fmt.Errorf("linear: view not closed under red sources (class %d)", id)
			}
			if err := t.AddRed(node, src, int(r.mult)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// buildView renders a class-ID set as a canonical wire.View: levels
// ascending, level-0 classes ordered by input, deeper classes by
// (parent position, red list); positions are the resulting indices.
// Hash-consing makes the within-level keys unique, so the order — and
// therefore the encoding and its size — depends only on the abstract
// view, not on interner ID assignment order, which varies across
// schedulers.
func buildView(infos []classInfo, ids []int32, self int32) *wire.View {
	maxLevel := int32(0)
	for _, id := range ids {
		if l := infos[id].level; l > maxLevel {
			maxLevel = l
		}
	}
	buckets := make([][]int32, maxLevel+1)
	for _, id := range ids {
		l := infos[id].level
		buckets[l] = append(buckets[l], id)
	}
	pos := make(map[int32]int32, len(ids))
	out := &wire.View{Classes: make([]wire.ViewClass, 0, len(ids))}
	for level, bucket := range buckets {
		cand := make([]wire.ViewClass, len(bucket))
		for i, id := range bucket {
			ci := infos[id]
			vc := wire.ViewClass{Level: int32(level), Parent: -1}
			if ci.parent >= 0 {
				vc.Parent = pos[ci.parent]
			} else {
				vc.Leader = ci.input.Leader
				vc.Value = ci.input.Value
			}
			if len(ci.reds) > 0 {
				vc.Reds = make([]wire.ViewRed, len(ci.reds))
				for j, r := range ci.reds {
					vc.Reds[j] = wire.ViewRed{Src: pos[r.src], Mult: r.mult}
				}
				sort.Slice(vc.Reds, func(a, b int) bool { return vc.Reds[a].Src < vc.Reds[b].Src })
			}
			cand[i] = vc
		}
		order := make([]int, len(bucket))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return lessViewClass(cand[order[a]], cand[order[b]]) })
		for _, oi := range order {
			pos[bucket[oi]] = int32(len(out.Classes))
			out.Classes = append(out.Classes, cand[oi])
		}
	}
	out.Self = pos[self]
	return out
}

// lessViewClass is the canonical within-level order: by input for level
// 0, by (parent position, red list) for deeper levels. Same-level classes
// never compare equal — the interner guarantees identical content means
// identical ID, and each ID appears once.
func lessViewClass(a, b wire.ViewClass) bool {
	if a.Level == 0 {
		if a.Leader != b.Leader {
			return a.Leader
		}
		return a.Value < b.Value
	}
	if a.Parent != b.Parent {
		return a.Parent < b.Parent
	}
	for i := 0; i < len(a.Reds) && i < len(b.Reds); i++ {
		if a.Reds[i].Src != b.Reds[i].Src {
			return a.Reds[i].Src < b.Reds[i].Src
		}
		if a.Reds[i].Mult != b.Reds[i].Mult {
			return a.Reds[i].Mult < b.Reds[i].Mult
		}
	}
	return len(a.Reds) < len(b.Reds)
}
