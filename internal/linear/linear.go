// Package linear implements the linear-time full-information counting
// algorithm of Di Luna–Viglietta ("Computing in Anonymous Dynamic
// Networks Is Linear", arXiv 2204.02128 / FOCS 2022) as a sibling backend
// of internal/core: the same history-tree substrate, the same engine,
// schedules and fault plans, but a protocol that broadcasts each
// process's entire view every round instead of O(log n)-bit messages.
// Views are hash-consed through a run-shared interner (structurally
// identical classes get one dense ID), so a message is a set of class IDs
// plus the sender's current class; its honest wire cost is still the
// canonical serialization of the whole view (internal/wire.View), which
// the engine accounts through wire.SizeOf. The result: Θ(T·n) rounds
// against the congested protocol's O(T·n³ log n), paid for with messages
// that grow to Θ(n³ log n) bits — the tradeoff experiment E17 measures.
//
// Both modes of the congested backend are supported, with decision rules
// derived from the solver black box rather than the FOCS 2022 "cut"
// analysis (see DESIGN.md decision 16):
//
//   - Leader mode: the leader scans completeness candidates c from the
//     shallowest up and accepts the first resolved answer n̂ once its view
//     is ≥ c + n̂ levels deep. One level spans T real rounds (the block
//     simulation), and each T-round block's union graph is connected, so
//     causal influence reaches every process within n̂−1 < n̂ blocks
//     exactly when n̂ = n — the assumed prefix is then genuinely complete.
//   - Leaderless mode: with a diameter bound D, any class created at
//     block ℓ is in every view by block ℓ + ⌈D/T⌉, so prefixes at
//     c ≤ depth − ⌈D/T⌉ are provably the true complete prefix and
//     identical across processes. Every process scans exactly those c and
//     outputs the first resolved frequency vector — all at the same
//     round, which Run verifies.
//
// Run returns the same *core.RunResult as the congested backend, so the
// service, CLI and bench layers handle both protocols uniformly.
package linear

import (
	"context"
	"errors"
	"fmt"
	"time"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
)

// Config parameterizes the linear protocol. It is the small subset of
// core.Config the full-information algorithm needs: the congested
// protocol's acknowledgment, reset, batching and compaction machinery has
// no counterpart here.
type Config struct {
	// Mode selects the leader or leaderless decision rule.
	Mode core.Mode
	// DiamBound is the known upper bound D on the dynamic diameter in
	// real rounds, required in leaderless mode and ignored otherwise.
	DiamBound int
	// BlockT is the dynamic disconnectivity T: one history-tree level
	// spans T real rounds, accumulating deliveries. 0 and 1 both mean an
	// always-connected network.
	BlockT int
	// MaxLevels aborts a process with an error if its view grows beyond
	// this many levels without a decision (0 = unlimited). Termination is
	// guaranteed within O(n) levels in-model, so tests set this to catch
	// divergence under out-of-model faults.
	MaxLevels int
	// Arithmetic selects the counting solver's exact-arithmetic backend,
	// as in core.Config.
	Arithmetic historytree.Arith
}

// blockT normalizes BlockT to ≥ 1.
func (c Config) blockT() int {
	if c.BlockT < 1 {
		return 1
	}
	return c.BlockT
}

// Validate checks the configuration against the inputs it will run with,
// mirroring core.Config.Validate.
func (c Config) Validate(inputs []historytree.Input) error {
	leaders := 0
	for _, in := range inputs {
		if in.Leader {
			leaders++
		}
	}
	switch c.Mode {
	case core.ModeLeader:
		if leaders != 1 {
			return fmt.Errorf("linear: leader mode requires exactly 1 leader, got %d", leaders)
		}
	case core.ModeLeaderless:
		if leaders != 0 {
			return fmt.Errorf("linear: leaderless mode forbids leader flags, got %d", leaders)
		}
		if c.DiamBound <= 0 {
			return fmt.Errorf("linear: leaderless mode requires a positive DiamBound")
		}
	default:
		return fmt.Errorf("linear: unknown mode %d", c.Mode)
	}
	if c.BlockT < 0 {
		return fmt.Errorf("linear: negative BlockT %d", c.BlockT)
	}
	return nil
}

// defaultMaxRounds derives a generous safety cap: the protocol decides
// within O(n) levels of T rounds each (plus the leaderless ⌈D/T⌉ lag),
// far under the congested backend's O(T·n³ log n) budget.
func defaultMaxRounds(n int, cfg Config) int {
	t := cfg.blockT()
	blocks := 4*n + 16
	if cfg.Mode == core.ModeLeaderless {
		blocks += (cfg.DiamBound + t - 1) / t
	}
	return t*blocks + 64
}

// Run executes the linear protocol over the schedule with the given
// inputs and returns the collected result in the same shape as core.Run,
// honoring the same engine-level options (context, deadline watchdog,
// bit limit, trace hook, scheduler selection). Like core.Run it verifies
// cross-process agreement on the leaderless answer before returning, so
// out-of-model schedules that break the diameter bound fail with a
// structured error instead of a silent disagreement.
func Run(s dynnet.Schedule, inputs []historytree.Input, cfg Config, opts core.RunOptions) (*core.RunResult, error) {
	n := s.N()
	if err := cfg.Validate(inputs); err != nil {
		return nil, err
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("linear: %d inputs for %d processes", len(inputs), n)
	}

	itn := newInterner()
	procs := make([]engine.Coroutine, n)
	leaderPID := -1
	for i, in := range inputs {
		p := &process{itn: itn, cfg: cfg, input: in}
		procs[i] = engine.CoroutineFunc(p.run)
		if in.Leader {
			leaderPID = i
		}
	}

	ecfg := engine.Config{
		Schedule:  s,
		MaxRounds: opts.MaxRounds,
		Deadline:  opts.Deadline,
		SizeOf:    sizeOfMessage,
		BitLimit:  opts.BitLimit,
		Trace:     opts.Trace,
		Scheduler: opts.Scheduler,
	}
	if ecfg.MaxRounds <= 0 {
		ecfg.MaxRounds = defaultMaxRounds(n, cfg)
	}
	if cfg.Mode == core.ModeLeader {
		// The run is over once the leader has output; non-leaders never
		// decide in leader mode (the basic Section 3 contract of core).
		ecfg.StopWhen = func(outputs map[int]any) bool {
			_, ok := outputs[leaderPID]
			return ok
		}
	}

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	started := time.Now()
	res, err := engine.RunContext(ctx, ecfg, procs)
	if err != nil {
		return nil, err
	}

	out := &core.RunResult{
		Outputs: make(map[int]*core.Outcome, len(res.Outputs)),
		Stats: core.RunStats{
			Rounds:         res.Rounds,
			MaxMessageBits: res.MaxMessageBits,
			TotalMessages:  res.TotalMessages,
			TotalBits:      res.TotalBits,
			WallClock:      time.Since(started),
		},
	}
	for pid, o := range res.Outputs {
		oc, ok := o.(*core.Outcome)
		if !ok {
			return nil, fmt.Errorf("linear: process %d produced unexpected output %T", pid, o)
		}
		out.Outputs[pid] = oc
	}

	switch cfg.Mode {
	case core.ModeLeader:
		leaderOut, ok := out.Outputs[leaderPID]
		if !ok {
			return nil, errors.New("linear: leader produced no output")
		}
		out.N = leaderOut.N
		out.Multiset = leaderOut.Multiset
		out.VHT = leaderOut.VHT
		out.Stats.Levels = leaderOut.Levels
		out.Stats.SolverTime = leaderOut.Solver.SolveTime
		out.Stats.SolverCalls = leaderOut.Solver.Calls
	case core.ModeLeaderless:
		if len(out.Outputs) != n {
			return nil, fmt.Errorf("linear: %d of %d leaderless processes produced output", len(out.Outputs), n)
		}
		var first *core.Outcome
		for _, oc := range out.Outputs {
			if first == nil {
				first = oc
				continue
			}
			if !sameFrequencies(first.Frequencies, oc.Frequencies) {
				return nil, errors.New("linear: leaderless processes disagree on frequencies")
			}
			if first.FinalRound != oc.FinalRound {
				return nil, fmt.Errorf("linear: leaderless termination rounds differ: %d vs %d",
					first.FinalRound, oc.FinalRound)
			}
		}
		out.Frequencies = first.Frequencies
		out.VHT = first.VHT
		out.Stats.Levels = first.Levels
		out.Stats.FinalDiamEstimate = first.FinalDiamEstimate
		out.Stats.SolverTime = first.Solver.SolveTime
		out.Stats.SolverCalls = first.Solver.Calls
	}
	return out, nil
}

// sameFrequencies mirrors core's leaderless agreement comparison.
func sameFrequencies(a, b *historytree.FrequencyResult) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.MinSize != b.MinSize || len(a.Shares) != len(b.Shares) {
		return false
	}
	for in, s := range a.Shares {
		if b.Shares[in] != s {
			return false
		}
	}
	return true
}
