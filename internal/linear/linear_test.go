package linear_test

import (
	"fmt"
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/linear"
)

// leaderIn builds n inputs with process 0 as the leader.
func leaderIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	in[0].Leader = true
	return in
}

// valueIn builds n leaderless inputs with values i mod 2.
func valueIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	for i := range in {
		in[i].Value = int64(i % 2)
	}
	return in
}

func TestLinearCountsTopologies(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for _, tc := range []struct {
			name  string
			sched dynnet.Schedule
		}{
			{"random", dynnet.NewRandomConnected(n, 0.3, int64(n))},
			{"path", dynnet.NewStatic(dynnet.Path(n))},
			{"complete", dynnet.NewStatic(dynnet.Complete(n))},
			{"shifting-path", dynnet.NewShiftingPath(n)},
		} {
			t.Run(fmt.Sprintf("n=%d/%s", n, tc.name), func(t *testing.T) {
				cfg := linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
				res, err := linear.Run(tc.sched, leaderIn(n), cfg, core.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if res.N != n {
					t.Fatalf("counted %d, want %d", res.N, n)
				}
				if res.Stats.TotalBits <= 0 || res.Stats.MaxMessageBits <= 0 {
					t.Fatalf("missing bit accounting: %+v", res.Stats)
				}
			})
		}
	}
}

func TestLinearGeneralizedCounting(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true}, {Value: 1}, {Value: 1}, {Value: 2}, {Value: 2}, {Value: 2},
	}
	n := len(inputs)
	cfg := linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
	res, err := linear.Run(dynnet.NewRandomConnected(n, 0.5, 8), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d, want %d", res.N, n)
	}
	if res.Multiset[historytree.Input{Value: 2}] != 3 || res.Multiset[historytree.Input{Leader: true}] != 1 {
		t.Fatalf("multiset: %v", res.Multiset)
	}
}

func TestLinearLeaderless(t *testing.T) {
	n := 6
	cfg := linear.Config{Mode: core.ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 8}
	res, err := linear.Run(dynnet.NewRandomConnected(n, 0.4, 11), valueIn(n), cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frequencies
	if f == nil || !f.Known {
		t.Fatalf("no frequencies: %+v", res)
	}
	// 3 zeros and 3 ones → shares 1:1 of minimal size 2.
	if f.MinSize != 2 || f.Shares[historytree.Input{Value: 0}] != 1 || f.Shares[historytree.Input{Value: 1}] != 1 {
		t.Fatalf("frequencies: %+v", f)
	}
}

func TestLinearBlockSimulation(t *testing.T) {
	n := 5
	for _, T := range []int{2, 4} {
		t.Run(fmt.Sprintf("T=%d", T), func(t *testing.T) {
			inner := dynnet.NewRandomConnected(n, 0.5, int64(T)*101+3)
			sched, err := dynnet.NewUnionConnected(inner, T)
			if err != nil {
				t.Fatal(err)
			}
			cfg := linear.Config{Mode: core.ModeLeader, BlockT: T, MaxLevels: 3*n + 8}
			res, err := linear.Run(sched, leaderIn(n), cfg, core.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.N != n {
				t.Fatalf("counted %d, want %d", res.N, n)
			}
		})
	}
}

// TestLinearSchedulerEquivalence pins the scheduler contract for the new
// backend: answers, rounds, levels and — thanks to the canonical view
// serialization — every bit-accounting stat must be identical under all
// three engine schedulers, even though interner ID assignment order is
// not.
func TestLinearSchedulerEquivalence(t *testing.T) {
	n := 7
	type key struct {
		n, rounds, levels, maxBits int
		totalMsgs, totalBits       int64
	}
	var want *key
	for _, sched := range []engine.Scheduler{
		engine.SchedulerSequential, engine.SchedulerParallel, engine.SchedulerConcurrent,
	} {
		cfg := linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
		res, err := linear.Run(dynnet.NewRandomConnected(n, 0.3, 21), leaderIn(n), cfg,
			core.RunOptions{Scheduler: sched})
		if err != nil {
			t.Fatalf("scheduler %d: %v", sched, err)
		}
		got := key{
			n: res.N, rounds: res.Stats.Rounds, levels: res.Stats.Levels,
			maxBits: res.Stats.MaxMessageBits, totalMsgs: res.Stats.TotalMessages,
			totalBits: res.Stats.TotalBits,
		}
		if want == nil {
			want = &got
			continue
		}
		if got != *want {
			t.Fatalf("scheduler %d diverged: %+v vs %+v", sched, got, *want)
		}
	}
}

func TestLinearConfigValidation(t *testing.T) {
	n := 4
	sched := dynnet.NewStatic(dynnet.Complete(n))
	cases := []struct {
		name   string
		cfg    linear.Config
		inputs []historytree.Input
	}{
		{"no-leader", linear.Config{Mode: core.ModeLeader}, make([]historytree.Input, n)},
		{"two-leaders", linear.Config{Mode: core.ModeLeader}, func() []historytree.Input {
			in := leaderIn(n)
			in[1].Leader = true
			return in
		}()},
		{"leaderless-with-leader", linear.Config{Mode: core.ModeLeaderless, DiamBound: n}, leaderIn(n)},
		{"leaderless-no-diam", linear.Config{Mode: core.ModeLeaderless}, valueIn(n)},
		{"zero-mode", linear.Config{}, leaderIn(n)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := linear.Run(sched, tc.inputs, tc.cfg, core.RunOptions{}); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
