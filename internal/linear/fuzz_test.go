package linear_test

import (
	"fmt"
	"testing"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
	"anondyn/internal/linear"
)

// FuzzProtocolEquivalence is the coverage-guided arm of the differential
// suite: the fuzzer picks a network size, density, seed, disconnectivity
// T, mode and a fault-plan spec, and both protocols run the resulting
// schedule. The contract:
//
//   - in-model (or fault-free) runs must succeed under BOTH protocols,
//     each answer must pass the ground-truth oracle, and the answers must
//     agree;
//   - out-of-model runs must fail detectably under both: a structured
//     error, or an answer the oracle rejects — never a panic, never an
//     unbounded run (rounds are capped, no wall-clock watchdog, so the
//     target stays deterministic).
func FuzzProtocolEquivalence(f *testing.F) {
	f.Add(5, uint8(50), int64(7), 1, "", false)
	f.Add(5, uint8(50), int64(7), 2, "spike:5:30", false)
	f.Add(6, uint8(40), int64(11), 1, "cut:3:20,storm:1:0:2", true)
	f.Add(8, uint8(60), int64(3), 4, "burst:1:0", false)
	f.Add(5, uint8(50), int64(9), 1, "drop:1:0:1", false)
	f.Add(5, uint8(50), int64(9), 1, "crash:0:3:0", true)

	f.Fuzz(func(t *testing.T, n int, pSel uint8, seed int64, T int, spec string, leaderless bool) {
		n = 1 + absInt(n)%8
		T = []int{1, 2, 4}[absInt(T)%3]
		p := 0.2 + float64(pSel%100)/160 // density in [0.2, 0.82)

		plan, err := faults.Parse(spec, T, seed)
		if err != nil {
			return // grammar rejection is the fault fuzzer's domain
		}
		if err := plan.ValidateFor(n); err != nil {
			return
		}
		inModel := plan.InModel()

		mkSched := func() dynnet.Schedule {
			base := dynnet.Schedule(dynnet.NewRandomConnected(n, p, seed))
			if T > 1 {
				uc, err := dynnet.NewUnionConnected(base, T)
				if err != nil {
					t.Fatal(err)
				}
				base = uc
			}
			return plan.Wrap(base)
		}

		var inputs []historytree.Input
		mode := core.ModeLeader
		if leaderless {
			if n == 1 {
				return // a 1-process leaderless run has nothing to disagree about
			}
			inputs = valueIn(n)
			mode = core.ModeLeaderless
		} else {
			inputs = leaderIn(n)
		}

		// Bounded, deterministic run of one protocol. In-model runs get
		// the backend's own derived round budget (they are guaranteed to
		// terminate within it); out-of-model runs get a tight cap so
		// wedges end quickly without a wall-clock watchdog.
		runOne := func(protocol string) (*core.RunResult, error) {
			var opts core.RunOptions
			if !inModel {
				opts.MaxRounds = 20_000 * T
			}
			if protocol == "linear" {
				cfg := linear.Config{Mode: mode, BlockT: T, MaxLevels: 3*n + 8}
				if leaderless {
					cfg.DiamBound = n * T
				}
				return linear.Run(mkSched(), inputs, cfg, opts)
			}
			cfg := core.Config{Mode: mode, BlockT: T, MaxLevels: 3*n + 8}
			if leaderless {
				cfg.DiamBound = n * T
			}
			return core.Run(mkSched(), inputs, cfg, opts)
		}

		type outcome struct {
			res *core.RunResult
			err error
		}
		results := map[string]outcome{}
		for _, protocol := range []string{"congested", "linear"} {
			res, err := runOne(protocol)
			if err == nil {
				if verr := check.VerifyAnswer(inputs, res); verr != nil {
					if inModel {
						t.Fatalf("%s (in-model %q): oracle rejected the answer: %v", protocol, spec, verr)
					}
					err = fmt.Errorf("oracle rejection: %w", verr)
					res = nil
				}
			} else if inModel {
				t.Fatalf("%s failed under in-model plan %q: %v", protocol, spec, err)
			}
			results[protocol] = outcome{res, err}
		}

		// Out-of-model: anything but a panic or an unbounded run is fine —
		// the oracle rejection above already converted silently wrong
		// answers into errors, and a genuinely correct answer despite the
		// faults (e.g. a mild probabilistic drop) passed the oracle.
		if !inModel {
			return
		}
		// In-model: both succeeded and passed the oracle; they must also
		// agree with each other.
		c, l := results["congested"], results["linear"]
		if c.res.N != l.res.N {
			t.Fatalf("plan %q: congested counted %d, linear %d", spec, c.res.N, l.res.N)
		}
		if leaderless && !sameShares(c.res.Frequencies, l.res.Frequencies) {
			t.Fatalf("plan %q: frequency vectors differ: %+v vs %+v",
				spec, c.res.Frequencies, l.res.Frequencies)
		}
	})
}

// sameShares compares two leaderless frequency results.
func sameShares(a, b *historytree.FrequencyResult) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.MinSize != b.MinSize || len(a.Shares) != len(b.Shares) {
		return false
	}
	for in, s := range a.Shares {
		if b.Shares[in] != s {
			return false
		}
	}
	return true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
