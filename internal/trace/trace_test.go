package trace

import (
	"fmt"
	"strings"
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

func TestLoggerObservesFullRun(t *testing.T) {
	n := 5
	var buf strings.Builder
	logger := New(&buf)
	inputs := make([]historytree.Input, n)
	inputs[0].Leader = true
	res, err := core.Run(dynnet.NewStatic(dynnet.Path(n)), inputs,
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
		core.RunOptions{Trace: logger.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
	if logger.Rounds() != res.Stats.Rounds {
		t.Errorf("logger saw %d rounds, run had %d", logger.Rounds(), res.Stats.Rounds)
	}
	// A path run must include Begin, Edge, Done, End, Error, and Reset
	// traffic (diameter 4 > initial estimate 1 forces resets).
	for _, lb := range []wire.Label{wire.LabelBegin, wire.LabelEdge, wire.LabelDone,
		wire.LabelEnd, wire.LabelError, wire.LabelReset} {
		if logger.LabelTotal(lb) == 0 {
			t.Errorf("no %s messages observed", lb)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Begin(") || !strings.Contains(out, "Edge(") {
		t.Error("per-round log missing expected message lines")
	}
	sum := logger.Summary()
	for _, want := range []string{"trace summary", "error phases observed", "reset broadcasts observed"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestSummaryTotalsAndResetTimeline drives a schedule engineered to force
// the error/reset machinery (a shifting path has diameter Θ(n), far above
// the initial DiamEstimate of 1) and checks the summary's per-label totals
// and the error/reset timeline against an independent tally of the same
// engine hook — not just that the run happened to succeed.
func TestSummaryTotalsAndResetTimeline(t *testing.T) {
	n := 6
	logger := New(nil)
	rec := core.NewRecorder()

	// Independent tally: chain our own observer in front of the logger's.
	indep := make(map[wire.Label]int64)
	var indepRounds int
	hook := logger.Hook()
	chained := func(round int, sent []engine.Message) {
		indepRounds = round
		for _, raw := range sent {
			if m, ok := wire.FromBox(raw); ok {
				indep[m.Label]++
			}
		}
		hook(round, sent)
	}

	inputs := make([]historytree.Input, n)
	inputs[0].Leader = true
	res, err := core.Run(dynnet.NewShiftingPath(n), inputs,
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6, Recorder: rec},
		core.RunOptions{Trace: chained})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d, want %d", res.N, n)
	}
	if res.Stats.Resets < 1 {
		t.Fatalf("schedule failed to force a reset (resets=%d); the timeline assertions below are vacuous", res.Stats.Resets)
	}

	// Per-label totals must match the independent tally exactly, and sum to
	// the engine's total message count (every message carries a label).
	var sum int64
	for lb, want := range indep {
		if got := logger.LabelTotal(lb); got != want {
			t.Errorf("label %s: logger says %d, independent tally %d", lb, got, want)
		}
		sum += want
	}
	if sum != res.Stats.TotalMessages {
		t.Errorf("label totals sum to %d, engine sent %d messages", sum, res.Stats.TotalMessages)
	}
	if logger.Rounds() != indepRounds || logger.Rounds() != res.Stats.Rounds {
		t.Errorf("rounds: logger %d, independent %d, engine %d", logger.Rounds(), indepRounds, res.Stats.Rounds)
	}

	// Timeline: a reset is leader-initiated in response to an error phase,
	// so error traffic must be observed, and the first error-dominated
	// round must precede the first reset-dominated round.
	if len(logger.errorRounds) == 0 || len(logger.resetRounds) == 0 {
		t.Fatalf("timeline empty: errors at %v, resets at %v", logger.errorRounds, logger.resetRounds)
	}
	if logger.errorRounds[0] >= logger.resetRounds[0] {
		t.Errorf("first error round %d not before first reset round %d",
			logger.errorRounds[0], logger.resetRounds[0])
	}
	last := 0
	for _, r := range logger.resetRounds {
		if r < last {
			t.Fatalf("reset rounds not monotone: %v", logger.resetRounds)
		}
		last = r
	}
	if logger.resetRounds[len(logger.resetRounds)-1] > res.Stats.Rounds {
		t.Errorf("reset observed after the run ended: %v > %d", logger.resetRounds, res.Stats.Rounds)
	}

	// The rendered summary must carry exactly the observed totals and the
	// compressed timelines.
	sum2 := logger.Summary()
	for lb, want := range indep {
		needle := fmt.Sprintf("%-6s %d\n", lb, want)
		if !strings.Contains(sum2, needle) {
			t.Errorf("summary missing per-label total %q:\n%s", needle, sum2)
		}
	}
	for _, want := range []string{
		"error phases observed at rounds " + compressRuns(logger.errorRounds),
		"reset broadcasts observed at rounds " + compressRuns(logger.resetRounds),
	} {
		if !strings.Contains(sum2, want) {
			t.Errorf("summary missing %q:\n%s", want, sum2)
		}
	}
	if strings.Contains(sum2, "halt broadcast") {
		t.Errorf("no Halt was configured, yet the summary mentions one:\n%s", sum2)
	}
}

func TestLoggerNilWriterCollectsStats(t *testing.T) {
	logger := New(nil)
	hook := logger.Hook()
	hook(1, []engine.Message{wire.Null(), wire.Begin(1)})
	hook(2, []engine.Message{wire.Edge(1, 2, 3), "not-a-protocol-message"})
	if logger.Rounds() != 2 {
		t.Fatalf("rounds=%d", logger.Rounds())
	}
	if logger.LabelTotal(wire.LabelEdge) != 1 || logger.LabelTotal(wire.LabelNull) != 1 {
		t.Fatal("label totals wrong")
	}
}

func TestCompressRuns(t *testing.T) {
	tests := []struct {
		in   []int
		want string
	}{
		{in: nil, want: ""},
		{in: []int{3}, want: "3"},
		{in: []int{3, 4, 5}, want: "3-5"},
		{in: []int{3, 4, 7, 9, 10}, want: "3-4, 7, 9-10"},
		{in: []int{1, 1, 2}, want: "1-2"},
	}
	for _, tt := range tests {
		if got := compressRuns(tt.in); got != tt.want {
			t.Errorf("compressRuns(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
