package trace

import (
	"strings"
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

func TestLoggerObservesFullRun(t *testing.T) {
	n := 5
	var buf strings.Builder
	logger := New(&buf)
	inputs := make([]historytree.Input, n)
	inputs[0].Leader = true
	res, err := core.Run(dynnet.NewStatic(dynnet.Path(n)), inputs,
		core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
		core.RunOptions{Trace: logger.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
	if logger.Rounds() != res.Stats.Rounds {
		t.Errorf("logger saw %d rounds, run had %d", logger.Rounds(), res.Stats.Rounds)
	}
	// A path run must include Begin, Edge, Done, End, Error, and Reset
	// traffic (diameter 4 > initial estimate 1 forces resets).
	for _, lb := range []wire.Label{wire.LabelBegin, wire.LabelEdge, wire.LabelDone,
		wire.LabelEnd, wire.LabelError, wire.LabelReset} {
		if logger.LabelTotal(lb) == 0 {
			t.Errorf("no %s messages observed", lb)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Begin(") || !strings.Contains(out, "Edge(") {
		t.Error("per-round log missing expected message lines")
	}
	sum := logger.Summary()
	for _, want := range []string{"trace summary", "error phases observed", "reset broadcasts observed"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestLoggerNilWriterCollectsStats(t *testing.T) {
	logger := New(nil)
	hook := logger.Hook()
	hook(1, []engine.Message{wire.Null(), wire.Begin(1)})
	hook(2, []engine.Message{wire.Edge(1, 2, 3), "not-a-protocol-message"})
	if logger.Rounds() != 2 {
		t.Fatalf("rounds=%d", logger.Rounds())
	}
	if logger.LabelTotal(wire.LabelEdge) != 1 || logger.LabelTotal(wire.LabelNull) != 1 {
		t.Fatal("label totals wrong")
	}
}

func TestCompressRuns(t *testing.T) {
	tests := []struct {
		in   []int
		want string
	}{
		{in: nil, want: ""},
		{in: []int{3}, want: "3"},
		{in: []int{3, 4, 5}, want: "3-5"},
		{in: []int{3, 4, 7, 9, 10}, want: "3-4, 7, 9-10"},
		{in: []int{1, 1, 2}, want: "1-2"},
	}
	for _, tt := range tests {
		if got := compressRuns(tt.in); got != tt.want {
			t.Errorf("compressRuns(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
