// Package trace renders engine rounds as a human-readable protocol log:
// one line per round summarizing who sent what, plus an end-of-run summary
// with per-label totals and the error/reset timeline. It plugs into
// engine.Config.Trace and is exposed through `cmd/cadn -trace`.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"anondyn/internal/core"
	"anondyn/internal/engine"
	"anondyn/internal/wire"
)

// Logger accumulates and writes the round log. All methods are safe for
// concurrent use; the engine calls the hook from its coordinator goroutine.
type Logger struct {
	mu sync.Mutex

	w           io.Writer
	rounds      int
	labelTotals map[wire.Label]int64
	resetRounds []int
	errorRounds []int
	firstHalt   int
}

// New returns a Logger writing one line per round to w. Pass nil to
// collect statistics without per-round output.
func New(w io.Writer) *Logger {
	return &Logger{w: w, labelTotals: make(map[wire.Label]int64), firstHalt: -1}
}

// Hook returns the engine trace callback.
func (l *Logger) Hook() func(round int, sent []engine.Message) {
	return func(round int, sent []engine.Message) {
		l.observe(round, sent)
	}
}

func (l *Logger) observe(round int, sent []engine.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rounds = round

	counts := make(map[wire.Message]int)
	var top wire.Message
	haveTop := false
	unknown := 0
	for _, raw := range sent {
		m, ok := wire.FromBox(raw)
		if !ok {
			unknown++
			continue
		}
		counts[m]++
		l.labelTotals[m.Label]++
		if !haveTop || core.Higher(m, top) {
			top, haveTop = m, true
		}
	}
	if haveTop {
		switch top.Label {
		case wire.LabelError:
			l.errorRounds = append(l.errorRounds, round)
		case wire.LabelReset:
			l.resetRounds = append(l.resetRounds, round)
		case wire.LabelHalt:
			if l.firstHalt < 0 {
				l.firstHalt = round
			}
		}
	}

	if l.w == nil {
		return
	}
	type entry struct {
		msg wire.Message
		n   int
	}
	entries := make([]entry, 0, len(counts))
	for m, n := range counts {
		entries = append(entries, entry{msg: m, n: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		// Highest priority first; ties by count.
		if c := core.Compare(entries[i].msg, entries[j].msg); c != 0 {
			return c > 0
		}
		return entries[i].n > entries[j].n
	})
	var b strings.Builder
	fmt.Fprintf(&b, "r%-5d", round)
	for i, e := range entries {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s×%d", e.msg, e.n)
	}
	if unknown > 0 {
		fmt.Fprintf(&b, "  ?×%d", unknown)
	}
	fmt.Fprintln(l.w, b.String())
}

// Summary renders the end-of-run digest.
func (l *Logger) Summary() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d rounds\n", l.rounds)

	labels := make([]wire.Label, 0, len(l.labelTotals))
	for lb := range l.labelTotals {
		labels = append(labels, lb)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, lb := range labels {
		fmt.Fprintf(&b, "  %-6s %d\n", lb, l.labelTotals[lb])
	}
	if len(l.errorRounds) > 0 {
		fmt.Fprintf(&b, "  error phases observed at rounds %s\n", compressRuns(l.errorRounds))
	}
	if len(l.resetRounds) > 0 {
		fmt.Fprintf(&b, "  reset broadcasts observed at rounds %s\n", compressRuns(l.resetRounds))
	}
	if l.firstHalt >= 0 {
		fmt.Fprintf(&b, "  halt broadcast first seen at round %d\n", l.firstHalt)
	}
	return b.String()
}

// Rounds returns the number of rounds observed.
func (l *Logger) Rounds() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rounds
}

// LabelTotal returns the total number of messages sent with the label.
func (l *Logger) LabelTotal(lb wire.Label) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.labelTotals[lb]
}

// compressRuns renders a sorted int slice as compact ranges: "3-7, 12, 19-20".
func compressRuns(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	var b strings.Builder
	start, prev := xs[0], xs[0]
	flush := func() {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		if start == prev {
			fmt.Fprintf(&b, "%d", start)
		} else {
			fmt.Fprintf(&b, "%d-%d", start, prev)
		}
	}
	for _, x := range xs[1:] {
		if x == prev || x == prev+1 {
			prev = x
			continue
		}
		flush()
		start, prev = x, x
	}
	flush()
	return b.String()
}
