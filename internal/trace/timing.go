package trace

import (
	"fmt"
	"time"

	"anondyn/internal/core"
)

// Timing summarizes where a run's real time went: the whole run's wall
// clock versus the slice spent inside the cardinality solver (and how many
// solver invocations that was). It is the timing companion to the message
// log: cmd/experiments attaches one Timing per table row so JSON consumers
// can see whether a slow sweep point is engine- or solver-bound.
type Timing struct {
	// WallClock is the full run duration, engine included.
	WallClock time.Duration
	// SolverTime is the deciding process's cumulative time inside the
	// counting solver, over SolverCalls invocations.
	SolverTime  time.Duration
	SolverCalls int
	// Multi-modular solver counters (zero under the big.Int backend):
	// battery primes in use at termination, CRT ray reconstructions,
	// unlucky-prime evictions, and fallbacks to the big.Int witness.
	SolverPrimes       int
	SolverCRTRecons    int
	SolverEvictions    int
	SolverWitnessFalls int
	// History-tree residency: the deepest level released by CompactVHT
	// compaction (0 when off or never engaged) and the peak resident node
	// count of the deciding process's tree.
	CompactedLevels   int
	PeakResidentNodes int
}

// TimingOf extracts the timing view of a run's statistics.
func TimingOf(st core.RunStats) *Timing {
	return &Timing{
		WallClock:          st.WallClock,
		SolverTime:         st.SolverTime,
		SolverCalls:        st.SolverCalls,
		SolverPrimes:       st.SolverPrimes,
		SolverCRTRecons:    st.SolverCRTRecons,
		SolverEvictions:    st.SolverEvictions,
		SolverWitnessFalls: st.SolverWitnessFalls,
		CompactedLevels:    st.CompactedLevels,
		PeakResidentNodes:  st.PeakResidentNodes,
	}
}

// Add accumulates another run's timing into t (for sweep points that
// aggregate several seeds). The battery size takes the maximum rather
// than the sum — it is a high-water mark, not a volume.
func (t *Timing) Add(o *Timing) {
	t.WallClock += o.WallClock
	t.SolverTime += o.SolverTime
	t.SolverCalls += o.SolverCalls
	if o.SolverPrimes > t.SolverPrimes {
		t.SolverPrimes = o.SolverPrimes
	}
	t.SolverCRTRecons += o.SolverCRTRecons
	t.SolverEvictions += o.SolverEvictions
	t.SolverWitnessFalls += o.SolverWitnessFalls
	if o.CompactedLevels > t.CompactedLevels {
		t.CompactedLevels = o.CompactedLevels
	}
	if o.PeakResidentNodes > t.PeakResidentNodes {
		t.PeakResidentNodes = o.PeakResidentNodes
	}
}

// WallMS returns the wall clock in milliseconds.
func (t *Timing) WallMS() float64 { return float64(t.WallClock) / float64(time.Millisecond) }

// SolverMS returns the solver time in milliseconds.
func (t *Timing) SolverMS() float64 { return float64(t.SolverTime) / float64(time.Millisecond) }

// String renders the timing compactly, e.g. "wall 12.4ms, solver 3.1ms (25%, 17 calls)".
func (t *Timing) String() string {
	share := 0.0
	if t.WallClock > 0 {
		share = 100 * float64(t.SolverTime) / float64(t.WallClock)
	}
	s := fmt.Sprintf("wall %.1fms, solver %.1fms (%.0f%%, %d calls)",
		t.WallMS(), t.SolverMS(), share, t.SolverCalls)
	if t.SolverPrimes > 0 {
		s += fmt.Sprintf(", %d primes, %d crt", t.SolverPrimes, t.SolverCRTRecons)
		if t.SolverEvictions > 0 {
			s += fmt.Sprintf(", %d evictions", t.SolverEvictions)
		}
		if t.SolverWitnessFalls > 0 {
			s += fmt.Sprintf(", %d witness falls", t.SolverWitnessFalls)
		}
	}
	if t.CompactedLevels > 0 {
		s += fmt.Sprintf(", %d levels compacted (peak %d nodes)",
			t.CompactedLevels, t.PeakResidentNodes)
	}
	return s
}
