// Package anondyn is a library for computation in congested anonymous
// dynamic networks, reproducing Di Luna–Viglietta, "Brief Announcement:
// Efficient Computation in Congested Anonymous Dynamic Networks" (PODC
// 2023).
//
// The library provides:
//
//   - A dynamic-network substrate (Schedule, Multigraph) with adversarial
//     schedule generators.
//   - A synchronous round engine running anonymous processes in lock-step
//     with exact message-size accounting.
//   - History trees (the FOCS 2022 structure), an oracle that builds the
//     true history tree of any run, and a cardinality solver.
//   - The paper's congested Counting algorithm and its Section 5
//     extensions: Generalized Counting, simultaneous termination,
//     leaderless frequency computation, and T-union-connected networks.
//   - Baselines (non-congested view exchange, randomized token
//     forwarding) and the benchmark harness that regenerates every
//     experiment in EXPERIMENTS.md.
//
// # Quick start
//
//	sched := anondyn.RandomConnected(8, 0.3, 1) // 8 processes, dynamic graph
//	inputs := anondyn.LeaderInputs(8)           // process 0 is the leader
//	res, err := anondyn.Count(sched, inputs)
//	if err != nil { ... }
//	fmt.Println(res.N) // 8, computed with O(log n)-bit messages
//
// The subpackages under internal/ hold the implementation; this package
// re-exports the stable API surface.
package anondyn

import (
	"anondyn/internal/adversary"
	"anondyn/internal/baseline"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
)

// Re-exported types. Aliases keep the internal packages as the single
// source of truth while exposing a stable import path.
type (
	// Multigraph is one round's communication graph.
	Multigraph = dynnet.Multigraph
	// Link is one (multi-)edge of a Multigraph.
	Link = dynnet.Link
	// Schedule is a dynamic network: the round-by-round graph adversary.
	Schedule = dynnet.Schedule

	// Input is a process's initial state: leader flag and input value.
	Input = historytree.Input
	// Tree is a history tree.
	Tree = historytree.Tree
	// Node is a history-tree node (an indistinguishability class).
	Node = historytree.Node
	// CountResult is the outcome of counting on a history tree.
	CountResult = historytree.CountResult
	// FrequencyResult is the leaderless frequency answer.
	FrequencyResult = historytree.FrequencyResult
	// OracleRun is a ground-truth history tree built from a schedule.
	OracleRun = historytree.Run

	// Mode selects the leader or leaderless protocol.
	Mode = core.Mode
	// Config parameterizes the congested protocol.
	Config = core.Config
	// RunOptions bundles engine-level knobs.
	RunOptions = core.RunOptions
	// RunResult is the outcome of a protocol run.
	RunResult = core.RunResult
	// RunStats carries a run's measurements.
	RunStats = core.RunStats
	// Outcome is one process's result.
	Outcome = core.Outcome
	// Recorder collects instrumentation from a run.
	Recorder = core.Recorder

	// NonCongestedResult is the outcome of the full-information baseline.
	NonCongestedResult = baseline.NonCongestedResult
	// TokenForwardResult is the outcome of the token-forwarding baseline.
	TokenForwardResult = baseline.TokenForwardResult
)

// Protocol modes.
const (
	// ModeLeader is the Section 3 algorithm with a unique leader.
	ModeLeader = core.ModeLeader
	// ModeLeaderless is the Section 5 leaderless extension.
	ModeLeaderless = core.ModeLeaderless
)

// NewGraph returns an empty multigraph on n processes.
func NewGraph(n int) *Multigraph { return dynnet.NewMultigraph(n) }

// Static returns a schedule that repeats g forever.
func Static(g *Multigraph) Schedule { return dynnet.NewStatic(g) }

// Graphs returns a schedule that plays the given graphs in order and then
// repeats the last one.
func Graphs(gs ...*Multigraph) (Schedule, error) { return dynnet.NewSequence(gs...) }

// ScheduleFunc adapts a function to the Schedule interface.
func ScheduleFunc(n int, f func(t int) *Multigraph) Schedule { return dynnet.NewFunc(n, f) }

// RandomConnected returns a schedule presenting an independent random
// connected graph (spanning tree plus density p) at every round.
func RandomConnected(n int, p float64, seed int64) Schedule {
	return dynnet.NewRandomConnected(n, p, seed)
}

// RotatingStar returns the rotating-star adversary.
func RotatingStar(n int) Schedule { return dynnet.NewRotatingStar(n) }

// ShiftingPath returns the shifting-path adversary (diameter Θ(n)).
func ShiftingPath(n int) Schedule { return dynnet.NewShiftingPath(n) }

// Bottleneck returns the two-clique bottleneck adversary.
func Bottleneck(n int) Schedule { return dynnet.NewBottleneck(n) }

// UnionConnected derives a T-union-connected schedule from a connected one
// by spreading each round's links over T consecutive rounds.
func UnionConnected(inner Schedule, t int) (Schedule, error) {
	return dynnet.NewUnionConnected(inner, t)
}

// Path, Cycle, Complete and Star build the standard fixed topologies.
func Path(n int) *Multigraph     { return dynnet.Path(n) }
func Cycle(n int) *Multigraph    { return dynnet.Cycle(n) }
func Complete(n int) *Multigraph { return dynnet.Complete(n) }
func Star(n, center int) *Multigraph {
	return dynnet.Star(n, center)
}

// LeaderInputs returns n inputs with process 0 flagged as the unique
// leader and all values zero — the input assignment of the basic Counting
// problem.
func LeaderInputs(n int) []Input {
	in := make([]Input, n)
	if n > 0 {
		in[0].Leader = true
	}
	return in
}

// Count runs the paper's congested Counting algorithm (Section 3, with a
// unique leader) over the schedule and returns the result. It is
// equivalent to Run with Config{Mode: ModeLeader}.
func Count(s Schedule, inputs []Input) (*RunResult, error) {
	return core.Run(s, inputs, Config{Mode: ModeLeader}, RunOptions{})
}

// Compute evaluates an arbitrary function of the multiset of input values,
// the "general computation" of Section 5: Generalized Counting is complete
// for the class of multi-aggregate functions, so once the leader knows the
// exact input multiset, any function of it follows locally. The supplied
// function receives the computed multiset (input → number of processes
// holding it, leader included) and its return value is handed back along
// with the run result.
//
// Example — the sum of all inputs:
//
//	res, total, err := anondyn.Compute(sched, inputs,
//	    func(ms map[anondyn.Input]int) any {
//	        sum := int64(0)
//	        for in, c := range ms {
//	            sum += in.Value * int64(c)
//	        }
//	        return sum
//	    })
func Compute(s Schedule, inputs []Input, f func(multiset map[Input]int) any) (*RunResult, any, error) {
	cfg := Config{Mode: ModeLeader, BuildInputLevel: true}
	res, err := core.Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		return nil, nil, err
	}
	return res, f(res.Multiset), nil
}

// Run executes the configured protocol over the schedule; see Config for
// the available extensions (Generalized Counting, simultaneous
// termination, leaderless mode, T-union-connected networks).
func Run(s Schedule, inputs []Input, cfg Config, opts RunOptions) (*RunResult, error) {
	return core.Run(s, inputs, cfg, opts)
}

// NewRecorder returns an instrumentation recorder to pass in Config.
func NewRecorder() *Recorder { return core.NewRecorder() }

// BuildHistoryTree constructs the ground-truth history tree of the first
// `rounds` rounds of the schedule under the given inputs (the oracle used
// by the test and benchmark suites).
func BuildHistoryTree(s Schedule, inputs []Input, rounds int) (*OracleRun, error) {
	return historytree.Build(s, inputs, rounds)
}

// CountTree runs the cardinality solver on a history tree whose levels
// 0..completeLevels are complete.
func CountTree(t *Tree, completeLevels int) (CountResult, error) {
	return historytree.Count(t, completeLevels)
}

// TreeFrequencies runs the leaderless frequency solver on a history tree.
func TreeFrequencies(t *Tree, completeLevels int) (FrequencyResult, error) {
	return historytree.Frequencies(t, completeLevels)
}

// RenderTree renders a history tree level by level in ASCII.
func RenderTree(t *Tree) string { return historytree.RenderASCII(t) }

// RenderTreeDOT renders a history tree in Graphviz DOT format.
func RenderTreeDOT(t *Tree, name string) string { return historytree.RenderDOT(t, name) }

// RunNonCongested executes the non-congested full-information baseline.
func RunNonCongested(s Schedule, inputs []Input, maxRounds int) (*NonCongestedResult, error) {
	return baseline.RunNonCongested(s, inputs, maxRounds)
}

// RunTokenForward executes the randomized token-forwarding baseline.
func RunTokenForward(s Schedule, bound int, seed int64) (*TokenForwardResult, error) {
	return baseline.RunTokenForward(s, bound, seed)
}

// AdaptiveSchedule is a reactive adversary that picks each round's graph
// after seeing the messages in flight (strongly adaptive model).
type AdaptiveSchedule = engine.AdaptiveSchedule

// Isolator is the worst-case adaptive adversary for the protocol's
// priority broadcast: it keeps the highest-priority message as far from
// the target process as a connected topology allows.
func Isolator(n, target int) AdaptiveSchedule { return adversary.NewIsolator(n, target) }

// RunAdaptive executes the protocol against a reactive adversary.
func RunAdaptive(a AdaptiveSchedule, inputs []Input, cfg Config, opts RunOptions) (*RunResult, error) {
	return core.RunAdaptive(a, inputs, cfg, opts)
}
