package anondyn_test

import (
	"fmt"
	"log"
	"sort"

	"anondyn"
)

// ExampleCount counts anonymous processes over a dynamic network with
// O(log n)-bit messages.
func ExampleCount() {
	sched := anondyn.RandomConnected(6, 0.4, 7)
	res, err := anondyn.Count(sched, anondyn.LeaderInputs(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.N)
	// Output: 6
}

// ExampleCompute evaluates an arbitrary multi-aggregate function — here
// the sum of all inputs — via Generalized Counting.
func ExampleCompute() {
	inputs := []anondyn.Input{
		{Leader: true, Value: 4},
		{Value: 10}, {Value: 10}, {Value: 1},
	}
	_, sum, err := anondyn.Compute(anondyn.RandomConnected(4, 0.5, 3), inputs,
		func(ms map[anondyn.Input]int) any {
			total := int64(0)
			for in, c := range ms {
				total += in.Value * int64(c)
			}
			return total
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: 25
}

// ExampleRun_leaderless computes exact input frequencies without any
// distinguished process, given a bound on the dynamic diameter.
func ExampleRun_leaderless() {
	inputs := []anondyn.Input{
		{Value: 1}, {Value: 1}, {Value: 2}, {Value: 1}, {Value: 1}, {Value: 2},
	}
	res, err := anondyn.Run(anondyn.RandomConnected(6, 0.4, 11), inputs, anondyn.Config{
		Mode:      anondyn.ModeLeaderless,
		DiamBound: 6,
	}, anondyn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	type share struct {
		value int64
		num   int
	}
	var shares []share
	for in, s := range res.Frequencies.Shares {
		shares = append(shares, share{value: in.Value, num: s})
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].value < shares[j].value })
	for _, s := range shares {
		fmt.Printf("input %d: %d/%d\n", s.value, s.num, res.Frequencies.MinSize)
	}
	// Output:
	// input 1: 2/3
	// input 2: 1/3
}

// ExampleBuildHistoryTree builds the ground-truth history tree of a small
// static network and prints its level sizes.
func ExampleBuildHistoryTree() {
	g := anondyn.Path(4)
	run, err := anondyn.BuildHistoryTree(anondyn.Static(g), anondyn.LeaderInputs(4), 3)
	if err != nil {
		log.Fatal(err)
	}
	for l := 0; l <= run.Tree.Depth(); l++ {
		fmt.Printf("level %d: %d classes\n", l, len(run.Tree.Level(l)))
	}
	// Output:
	// level 0: 2 classes
	// level 1: 4 classes
	// level 2: 4 classes
	// level 3: 4 classes
}
