// Quickstart: count anonymous processes in a congested dynamic network.
//
// Eight indistinguishable processes — one of them a designated leader (a
// base station, say) — communicate over a network whose topology is
// rearranged adversarially every round, and every message is limited to
// O(log n) bits. The leader deterministically learns the exact number of
// processes with no a-priori knowledge of the network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anondyn"
)

func main() {
	const n = 8

	// A dynamic network: an independently drawn random connected graph at
	// every round. Any connected adversary works; try ShiftingPath for the
	// worst case.
	sched := anondyn.RandomConnected(n, 0.3, 42)

	// Anonymous inputs: everyone identical except the single leader flag.
	inputs := anondyn.LeaderInputs(n)

	res, err := anondyn.Count(sched, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counted n = %d processes\n", res.N)
	fmt.Printf("rounds: %d (paper bound: O(n³ log n))\n", res.Stats.Rounds)
	fmt.Printf("VHT levels built: %d (≤ 3n = %d)\n", res.Stats.Levels, 3*n)
	fmt.Printf("largest message: %d bits (congested model: O(log n))\n", res.Stats.MaxMessageBits)
	fmt.Printf("leader-initiated resets: %d, final diameter estimate: %d\n",
		res.Stats.Resets, res.Stats.FinalDiamEstimate)
}
