// Disconnected: counting in a network that is never connected at any
// single round.
//
// Intermittently-connected networks (duty-cycled radios, satellite passes,
// sparse vehicular networks) are only T-union-connected: the union of any
// T consecutive rounds' links is connected, but individual rounds are not.
// The Section 5 block-simulation extension runs the counting algorithm on
// blocks of T rounds, paying a factor T in running time — linear in T,
// versus the exponential dependence of prior work.
//
// Run with: go run ./examples/disconnected
package main

import (
	"fmt"
	"log"

	"anondyn"
)

func main() {
	const (
		n = 7
		T = 3 // dynamic disconnectivity: known to the processes
	)

	// Derive a T-union-connected adversary: each connected round's links
	// are spread over T real rounds, so no single round is connected.
	inner := anondyn.RandomConnected(n, 0.5, 7)
	sched, err := anondyn.UnionConnected(inner, T)
	if err != nil {
		log.Fatal(err)
	}

	res, err := anondyn.Run(sched, anondyn.LeaderInputs(n), anondyn.Config{
		Mode:      anondyn.ModeLeader,
		BlockT:    T,
		MaxLevels: 3*n + 8,
	}, anondyn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counted n = %d across a %d-union-connected network\n", res.N, T)
	fmt.Printf("real rounds: %d (= %d virtual rounds × T=%d)\n",
		res.Stats.Rounds, res.Stats.Rounds/T, T)
	fmt.Printf("max message: %d bits\n", res.Stats.MaxMessageBits)

	// Show the same run on the connected inner schedule for comparison.
	conn, err := anondyn.Run(inner, anondyn.LeaderInputs(n), anondyn.Config{
		Mode:      anondyn.ModeLeader,
		MaxLevels: 3*n + 8,
	}, anondyn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same adversary, connected (T=1): %d rounds — the overhead is exactly linear in T\n",
		conn.Stats.Rounds)
}
