// Worstcase: counting against a strongly adaptive adversary, with a
// protocol trace.
//
// The adversary re-wires the network every round AFTER inspecting the
// messages in flight, always pushing the highest-priority message to the
// far end of a path from the leader — the nastiest topology for the
// protocol's priority broadcast. The self-stabilizing machinery has to
// repeatedly detect faulty broadcasts, reset, and double its diameter
// estimate until broadcasts become reliable; the count is exact anyway.
//
// Run with: go run ./examples/worstcase
package main

import (
	"fmt"
	"log"

	"anondyn"
	"anondyn/internal/trace"
)

func main() {
	const n = 7

	logger := trace.New(nil) // statistics only; pass os.Stdout for the full log
	res, err := anondyn.RunAdaptive(
		anondyn.Isolator(n, 0), // target the leader (process 0)
		anondyn.LeaderInputs(n),
		anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 8},
		anondyn.RunOptions{Trace: logger.Hook()},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counted n = %d against a strongly adaptive adversary\n", res.N)
	fmt.Printf("rounds: %d (the adversary forces near-worst-case broadcasts)\n", res.Stats.Rounds)
	fmt.Printf("resets: %d, final diameter estimate: %d (Lemma 4.7 cap: 4n = %d)\n",
		res.Stats.Resets, res.Stats.FinalDiamEstimate, 4*n)
	fmt.Println()
	fmt.Print(logger.Summary())

	// The same network size on a benign random schedule, for contrast.
	benign, err := anondyn.Count(anondyn.RandomConnected(n, 0.3, 1), anondyn.LeaderInputs(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbenign random schedule for comparison: %d rounds (%.1fx faster)\n",
		benign.Stats.Rounds, float64(res.Stats.Rounds)/float64(benign.Stats.Rounds))
}
