// Sensorfleet: Generalized Counting over a fleet of anonymous sensors.
//
// A base station (the leader) and a fleet of battery-powered sensors form
// a mobile ad-hoc network: links appear and disappear as the sensors move.
// Each sensor holds a discretized reading (say, a temperature bucket). The
// sensors are anonymous — no IDs, for privacy and cost — and, to save
// battery, may only transmit O(log n)-bit messages.
//
// The Generalized Counting extension (Section 5 of the paper) lets the
// base station compute the exact multiset of readings: how many sensors
// report each bucket. With SimultaneousHalt, the whole fleet also learns n
// and shuts down its radios at the same round.
//
// Run with: go run ./examples/sensorfleet
package main

import (
	"fmt"
	"log"
	"sort"

	"anondyn"
)

func main() {
	// One base station plus eleven sensors with readings in buckets 18–22.
	readings := []int64{20, 19, 20, 21, 18, 20, 22, 19, 20, 21, 19}
	n := len(readings) + 1

	inputs := make([]anondyn.Input, 0, n)
	inputs = append(inputs, anondyn.Input{Leader: true}) // the base station
	for _, r := range readings {
		inputs = append(inputs, anondyn.Input{Value: r})
	}

	// Mobility model: a two-cluster topology with a single moving bridge —
	// a hard case, since most information must cross the bottleneck.
	sched := anondyn.Bottleneck(n)

	res, err := anondyn.Run(sched, inputs, anondyn.Config{
		Mode:            anondyn.ModeLeader,
		BuildInputLevel: true, // construct level 0 from the readings
		MaxLevels:       3*n + 8,
	}, anondyn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet size (including base station): %d\n", res.N)
	fmt.Println("reading histogram computed by the base station:")
	type row struct {
		bucket int64
		count  int
	}
	var rows []row
	for in, c := range res.Multiset {
		if in.Leader {
			continue
		}
		rows = append(rows, row{bucket: in.Value, count: c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].bucket < rows[j].bucket })
	for _, r := range rows {
		fmt.Printf("  %d°: %d sensor(s)\n", r.bucket, r.count)
	}
	fmt.Printf("protocol: %d rounds, max message %d bits, %d resets\n",
		res.Stats.Rounds, res.Stats.MaxMessageBits, res.Stats.Resets)
}
