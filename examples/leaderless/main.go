// Leaderless: opinion polling in a peer-to-peer network with no
// distinguished node.
//
// A swarm of identical devices wants to know what fraction of its members
// holds each opinion — without a coordinator, without IDs, and with
// O(log n)-bit messages. Leaderless anonymous networks provably cannot
// count themselves, but with a known bound D on the dynamic diameter they
// can compute exact input frequencies (Section 5 of the paper; the
// frequency-based functions are exactly the computable ones).
//
// Run with: go run ./examples/leaderless
package main

import (
	"fmt"
	"log"

	"anondyn"
)

func main() {
	// Nine devices voting A(0), B(1) or C(2): 3 : 5 : 1.
	votes := []int64{0, 1, 1, 2, 0, 1, 1, 0, 1}
	n := len(votes)

	inputs := make([]anondyn.Input, n)
	for i, v := range votes {
		inputs[i].Value = v
	}

	// The devices know an upper bound on the dynamic diameter: any
	// connected n-process network has dynamic diameter < n.
	sched := anondyn.RotatingStar(n)
	res, err := anondyn.Run(sched, inputs, anondyn.Config{
		Mode:      anondyn.ModeLeaderless,
		DiamBound: n,
		MaxLevels: 3*n + 8,
	}, anondyn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	f := res.Frequencies
	fmt.Printf("every device simultaneously computed (at round %d):\n",
		res.Outputs[0].FinalRound)
	names := map[int64]string{0: "A", 1: "B", 2: "C"}
	for in, share := range f.Shares {
		fmt.Printf("  option %s: %d/%d of the swarm\n", names[in.Value], share, f.MinSize)
	}
	fmt.Printf("the swarm size itself is unknowable without a leader: any multiple of %d fits\n",
		f.MinSize)
	fmt.Printf("protocol: %d rounds (bound O(D·n²) = %d), max message %d bits\n",
		res.Stats.Rounds, n*n*n, res.Stats.MaxMessageBits)
}
